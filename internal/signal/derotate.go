package signal

import (
	"math"
	"math/cmplx"
)

// Derotate removes a frequency offset of cfo Hz from samples in place, with
// the phase reference at index 0. The rotation phasor is advanced by a
// single complex multiply per sample (all trig hoisted out of the loop) and
// renormalised every 1024 samples against magnitude drift.
//
// Bit-identity: this is the exact recurrence the wifi and zigbee receivers
// historically inlined; both now call it, so CFO correction stays
// bit-for-bit identical across radios.
func Derotate(samples []complex128, cfo, rate float64) {
	if cfo == 0 {
		return
	}
	step := cmplx.Exp(complex(0, -2*math.Pi*cfo/rate))
	rot := complex(1, 0)
	// Block form of the historical per-sample loop: the renorm fires only at
	// i ≡ 1023 (mod 1024), so each 1024-sample run executes the same
	// multiply/advance sequence with the boundary test hoisted out of the
	// inner loop. Operations and their order are unchanged — the renorm
	// still happens right after the boundary sample's rot advance.
	n := len(samples)
	for i := 0; i < n; {
		end := (i | 0x3FF) + 1
		boundary := end <= n
		if !boundary {
			end = n
		}
		blk := samples[i:end]
		for j := range blk {
			blk[j] *= rot
			rot *= step
		}
		i = end
		if boundary {
			rot /= complex(cmplx.Abs(rot), 0)
		}
	}
}
