package signal

import (
	"math"
	"math/cmplx"
)

// Derotate removes a frequency offset of cfo Hz from samples in place, with
// the phase reference at index 0. The rotation phasor is advanced by a
// single complex multiply per sample (all trig hoisted out of the loop) and
// renormalised every 1024 samples against magnitude drift.
//
// Bit-identity: this is the exact recurrence the wifi and zigbee receivers
// historically inlined; both now call it, so CFO correction stays
// bit-for-bit identical across radios.
func Derotate(samples []complex128, cfo, rate float64) {
	if cfo == 0 {
		return
	}
	step := cmplx.Exp(complex(0, -2*math.Pi*cfo/rate))
	rot := complex(1, 0)
	for i := range samples {
		samples[i] *= rot
		rot *= step
		if i&0x3FF == 0x3FF {
			rot /= complex(cmplx.Abs(rot), 0)
		}
	}
}
