package signal

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes the in-place radix-2 decimation-in-time FFT of x. The length
// must be a power of two. The transform is unnormalised (standard DFT sum).
func FFT(x []complex128) error {
	return fftDir(x, false)
}

// IFFT computes the inverse FFT of x in place, including the 1/N
// normalisation, so IFFT(FFT(x)) == x.
func IFFT(x []complex128) error {
	if err := fftDir(x, true); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

func fftDir(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("signal: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		theta := sign * 2 * math.Pi / float64(size)
		wStep := complex(math.Cos(theta), math.Sin(theta))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	return nil
}

// FFTShift reorders FFT output so the zero-frequency bin sits in the middle
// of the slice (negative frequencies first). Returns a new slice.
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	half := (n + 1) / 2
	copy(out, x[half:])
	copy(out[n-half:], x[:half])
	return out
}

// Spectrum returns the power spectrum (|X[k]|^2 / N^2) of the first power-of-
// two prefix of the signal, ordered with DC at bin 0.
func (s *Signal) Spectrum(n int) ([]float64, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("signal: spectrum size %d not a power of two", n)
	}
	buf := make([]complex128, n)
	copy(buf, s.Samples)
	if err := FFT(buf); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	norm := float64(n) * float64(n)
	for i, v := range buf {
		out[i] = (real(v)*real(v) + imag(v)*imag(v)) / norm
	}
	return out, nil
}

// Goertzel evaluates the DFT of x at a single normalised frequency f (cycles
// per sample), useful for cheap tone detection in the FSK demodulator tests.
func Goertzel(x []complex128, f float64) complex128 {
	// Direct correlation: sum x[n]·exp(-j2πfn). For the short blocks used in
	// tests this is clearer than the classical recurrence and numerically
	// safer for complex input.
	var acc complex128
	w := complex(math.Cos(-2*math.Pi*f), math.Sin(-2*math.Pi*f))
	rot := complex(1, 0)
	for _, v := range x {
		acc += v * rot
		rot *= w
	}
	return acc
}
