package signal

import (
	"fmt"
	"math"
)

// FFT computes the in-place radix-2 decimation-in-time FFT of x. The length
// must be a power of two. The transform is unnormalised (standard DFT sum).
// The twiddle factors and bit-reversal permutation come from the cached
// per-size Plan, so steady-state calls allocate nothing.
func FFT(x []complex128) error {
	if len(x) == 0 {
		return nil
	}
	p, err := PlanFor(len(x))
	if err != nil {
		return err
	}
	return p.FFT(x)
}

// IFFT computes the inverse FFT of x in place, including the 1/N
// normalisation, so IFFT(FFT(x)) == x.
func IFFT(x []complex128) error {
	if len(x) == 0 {
		return nil
	}
	p, err := PlanFor(len(x))
	if err != nil {
		return err
	}
	return p.IFFT(x)
}

// FFTShift reorders FFT output so the zero-frequency bin sits in the middle
// of the slice (negative frequencies first). Returns a new slice; use
// FFTShiftInPlace on a hot path.
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	half := (n + 1) / 2
	copy(out, x[half:])
	copy(out[n-half:], x[:half])
	return out
}

// Spectrum returns the power spectrum (|X[k]|^2 / N^2) over the first n
// samples of the signal, ordered with DC at bin 0. n must be a power of two
// no larger than the signal: silently zero-padding past the end would
// report a spectrum of a signal that was never captured, so a too-large n
// is an explicit error.
func (s *Signal) Spectrum(n int) ([]float64, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("signal: spectrum size %d not a power of two", n)
	}
	if n > len(s.Samples) {
		return nil, fmt.Errorf("signal: spectrum size %d exceeds signal length %d", n, len(s.Samples))
	}
	a := GetArena()
	defer a.Release()
	buf := a.Complex(n)
	copy(buf, s.Samples)
	if err := FFT(buf); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	norm := float64(n) * float64(n)
	for i, v := range buf {
		out[i] = (real(v)*real(v) + imag(v)*imag(v)) / norm
	}
	return out, nil
}

// Goertzel evaluates the DFT of x at a single normalised frequency f (cycles
// per sample), useful for cheap tone detection in the FSK demodulator tests.
// The phasor recurrence hoists all trigonometry out of the loop: one
// cos/sin pair per call regardless of the block length.
func Goertzel(x []complex128, f float64) complex128 {
	// Direct correlation: sum x[n]·exp(-j2πfn). For the short blocks used in
	// tests this is clearer than the classical recurrence and numerically
	// safer for complex input.
	var acc complex128
	w := complex(math.Cos(-2*math.Pi*f), math.Sin(-2*math.Pi*f))
	rot := complex(1, 0)
	for _, v := range x {
		acc += v * rot
		rot *= w
	}
	return acc
}
