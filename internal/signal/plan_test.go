package signal

import (
	"math"
	"math/bits"
	"math/rand"
	"sync"
	"testing"
)

// legacyFFT is the pre-plan in-place FFT, kept verbatim as the bit-identity
// reference: Plan.FFT/IFFT must reproduce its output exactly (==, not
// approximately), or every golden vector in testdata/golden would shift.
func legacyFFT(x []complex128, inverse bool) {
	n := len(x)
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		theta := sign * 2 * math.Pi / float64(size)
		wStep := complex(math.Cos(theta), math.Sin(theta))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	if inverse {
		d := complex(float64(n), 0)
		for i := range x {
			x[i] /= d
		}
	}
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestPlanBitIdenticalToLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 128, 256, 1024, 2048} {
		x := randComplex(rng, n)
		want := append([]complex128(nil), x...)
		got := append([]complex128(nil), x...)

		legacyFFT(want, false)
		if err := FFT(got); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d forward bin %d: plan %v, legacy %v", n, i, got[i], want[i])
			}
		}

		legacyFFT(want, true)
		if err := IFFT(got); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d inverse bin %d: plan %v, legacy %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestPlanForRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -4, 3, 12, 1 << 10 / 3} {
		if _, err := PlanFor(n); err == nil {
			t.Errorf("PlanFor(%d) accepted", n)
		}
	}
	p, err := PlanFor(64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 64 {
		t.Fatalf("Size = %d", p.Size())
	}
	if err := p.FFT(make([]complex128, 32)); err == nil {
		t.Error("plan accepted wrong-size input")
	}
	if err := p.IFFT(make([]complex128, 128)); err == nil {
		t.Error("plan accepted wrong-size input")
	}
}

func TestPlanForConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	plans := make([]*Plan, 16)
	for i := range plans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := PlanFor(512)
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	for _, p := range plans {
		if p != plans[0] {
			t.Fatal("concurrent PlanFor returned different plan instances")
		}
	}
}

func TestFFTShiftInPlaceMatchesFFTShift(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 8, 64, 101} {
		x := randComplex(rng, n)
		want := FFTShift(x)
		FFTShiftInPlace(x)
		for i := range want {
			if x[i] != want[i] {
				t.Fatalf("n=%d index %d: in-place %v, copy %v", n, i, x[i], want[i])
			}
		}
	}
}

// TestPlanZeroAllocs pins the tentpole guarantee: steady-state plan
// transforms allocate nothing.
func TestPlanZeroAllocs(t *testing.T) {
	p, err := PlanFor(1024)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%7), float64(i%5))
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := p.FFT(x); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Plan.FFT allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := p.IFFT(x); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Plan.IFFT allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { FFTShiftInPlace(x) }); n != 0 {
		t.Fatalf("FFTShiftInPlace allocates %v per run, want 0", n)
	}
}

func TestArenaReuseAndZeroing(t *testing.T) {
	a := GetArena()
	c1 := a.Complex(64)
	c2 := a.Complex(64)
	if &c1[0] == &c2[0] {
		t.Fatal("arena handed out the same buffer twice while held")
	}
	for i := range c1 {
		c1[i] = complex(1, 1)
	}
	f1 := a.Float(32)
	f1[0] = 3
	b1 := a.Bytes(16)
	b1[0] = 9
	i1 := a.Int32(8)
	i1[0] = 7
	a.Release()

	a = GetArena()
	c3 := a.Complex(48) // smaller request may reuse a released 64-cap buffer
	for i, v := range c3 {
		if v != 0 {
			t.Fatalf("reused complex buffer not zeroed at %d: %v", i, v)
		}
	}
	f2 := a.Float(32)
	if f2[0] != 0 {
		t.Fatal("reused float buffer not zeroed")
	}
	b2 := a.Bytes(16)
	if b2[0] != 0 {
		t.Fatal("reused byte buffer not zeroed")
	}
	i2 := a.Int32(8)
	if i2[0] != 0 {
		t.Fatal("reused int32 buffer not zeroed")
	}
	a.Release()
}

func TestConvolveIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct{ n, taps int }{{1, 1}, {10, 3}, {100, 31}, {257, 101}} {
		x := randComplex(rng, tc.n)
		h := make([]float64, tc.taps)
		for i := range h {
			h[i] = rng.NormFloat64()
		}
		want := Convolve(x, h)
		a := GetArena()
		got := ConvolveInto(nil, x, h, a)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d taps=%d sample %d: %v vs %v", tc.n, tc.taps, i, got[i], want[i])
			}
		}
		a.Release()
	}
	a := GetArena()
	defer a.Release()
	if out := ConvolveInto(nil, nil, []float64{1}, a); len(out) != 0 {
		t.Error("empty input should give empty output")
	}
}

func TestConvolveFFTMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, tc := range []struct{ n, taps int }{{64, 129}, {1000, 129}, {5000, 257}, {100, 401}, {37, 5}} {
		x := randComplex(rng, tc.n)
		h := make([]float64, tc.taps)
		for i := range h {
			h[i] = rng.NormFloat64() / float64(tc.taps)
		}
		want := Convolve(x, h)
		got := ConvolveFFT(x, h)
		if len(got) != len(want) {
			t.Fatalf("length %d, want %d", len(got), len(want))
		}
		var scale float64
		for _, v := range want {
			scale += real(v)*real(v) + imag(v)*imag(v)
		}
		scale = math.Sqrt(scale/float64(len(want))) + 1e-30
		for i := range want {
			d := got[i] - want[i]
			if math.Hypot(real(d), imag(d)) > 1e-9*scale+1e-12 {
				t.Fatalf("n=%d taps=%d sample %d: fft %v, direct %v", tc.n, tc.taps, i, got[i], want[i])
			}
		}
	}
	if ConvolveFFT(nil, []float64{1}) != nil {
		t.Error("nil input should give nil")
	}
}

func TestSpectrumRejectsOversize(t *testing.T) {
	s := New(1e6, 64)
	if _, err := s.Spectrum(128); err == nil {
		t.Error("Spectrum accepted n > len(samples)")
	}
	if _, err := s.Spectrum(64); err != nil {
		t.Errorf("Spectrum rejected n == len(samples): %v", err)
	}
	if _, err := s.Spectrum(0); err == nil {
		t.Error("Spectrum accepted n = 0")
	}
	if _, err := s.Spectrum(48); err == nil {
		t.Error("Spectrum accepted non-power-of-two")
	}
}

func TestDerotateRemovesTone(t *testing.T) {
	const rate = 1e6
	const cfo = 12_345.0
	n := 4096
	x := make([]complex128, n)
	for i := range x {
		phase := 2 * math.Pi * cfo * float64(i) / rate
		x[i] = complex(math.Cos(phase), math.Sin(phase))
	}
	Derotate(x, cfo, rate)
	for i, v := range x {
		if math.Abs(real(v)-1) > 1e-6 || math.Abs(imag(v)) > 1e-6 {
			t.Fatalf("sample %d not derotated to DC: %v", i, v)
		}
	}
	y := []complex128{1, 2, 3}
	Derotate(y, 0, rate)
	if y[0] != 1 || y[1] != 2 || y[2] != 3 {
		t.Fatal("zero-CFO derotate modified samples")
	}
}
