package signal

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/simd"
)

// TestMain announces which SIMD dispatch path this process runs under;
// see the twin in internal/core — benchgate records the line with every
// trajectory point.
func TestMain(m *testing.M) {
	fmt.Printf("simd-dispatch: %s\n", simd.Mode())
	os.Exit(m.Run())
}
