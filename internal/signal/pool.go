package signal

import "sync"

// FreeList is a bounded, mutex-guarded free list: a sync.Pool whose
// contents survive garbage collection. The runtime's pool empties with
// collection cycles, so the steady-state allocation count of code using
// one depends on GC timing — the BENCH_DSP trajectory showed per-packet
// allocs/op flickering by ±1 with collection cadence, which forced the
// benchgate allocation budgets to tolerate drift. A FreeList trades that
// nondeterminism for a bounded amount of pinned memory: Get pops (or
// calls New on a cold list), Put pushes back unless Cap items are already
// free. The mutex is uncontended in practice — the per-packet pipelines
// check out a handful of objects per millisecond-scale packet.
type FreeList[T any] struct {
	// New constructs a fresh value when the list is empty. Must be set.
	New func() T
	// Cap bounds how many free values the list retains; zero means 16.
	// Values returned beyond the bound are dropped for the GC.
	Cap int

	mu   sync.Mutex
	free []T
}

// Get returns a recycled value or a fresh one from New.
func (l *FreeList[T]) Get() T {
	l.mu.Lock()
	if n := len(l.free); n > 0 {
		v := l.free[n-1]
		var zero T
		l.free[n-1] = zero // drop the reference so oversized values can die
		l.free = l.free[:n-1]
		l.mu.Unlock()
		return v
	}
	l.mu.Unlock()
	return l.New()
}

// Put returns a value to the list, dropping it if the list is full.
func (l *FreeList[T]) Put(v T) {
	max := l.Cap
	if max <= 0 {
		max = 16
	}
	l.mu.Lock()
	if len(l.free) < max {
		l.free = append(l.free, v)
	}
	l.mu.Unlock()
}
