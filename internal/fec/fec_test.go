package fec

import (
	"math/rand"
	"testing"
)

func TestGFTables(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a * a^-1 = %d for a=%d", got, a)
		}
	}
	// Distributivity spot-check on a pseudorandom triple set.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity fails for %d,%d,%d", a, b, c)
		}
	}
}

func TestRSEncodeProducesValidCodeword(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, p := range []int{2, 4, 6, 16, 32} {
		for _, k := range []int{1, 5, 20, 100} {
			data := make([]byte, k)
			rng.Read(data)
			cw := make([]byte, k+p)
			copy(cw, data)
			rsEncode(data, cw[k:])
			var synd [maxParity]byte
			if syndromes(cw, synd[:p]) {
				t.Fatalf("k=%d p=%d: encoded codeword has nonzero syndrome", k, p)
			}
		}
	}
}

func TestRSDecodeCorrectsUpToT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ k, p int }{{10, 2}, {20, 4}, {50, 8}, {100, 16}} {
		t.Run("", func(t *testing.T) {
			data := make([]byte, tc.k)
			rng.Read(data)
			clean := make([]byte, tc.k+tc.p)
			copy(clean, data)
			rsEncode(data, clean[tc.k:])

			for errs := 0; errs <= tc.p/2; errs++ {
				rec := append([]byte(nil), clean...)
				pos := rng.Perm(len(rec))[:errs]
				for _, i := range pos {
					rec[i] ^= byte(1 + rng.Intn(255))
				}
				n, ok := rsDecode(rec, tc.p)
				if !ok {
					t.Fatalf("k=%d p=%d errs=%d: decode failed", tc.k, tc.p, errs)
				}
				if n != errs {
					t.Fatalf("k=%d p=%d errs=%d: corrected %d", tc.k, tc.p, errs, n)
				}
				for i := range clean {
					if rec[i] != clean[i] {
						t.Fatalf("k=%d p=%d errs=%d: symbol %d wrong", tc.k, tc.p, errs, i)
					}
				}
			}
		})
	}
}

func TestRSDecodeDetectsBeyondT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const k, p = 30, 6 // t = 3
	data := make([]byte, k)
	rng.Read(data)
	clean := make([]byte, k+p)
	copy(clean, data)
	rsEncode(data, clean[k:])

	detected, miscorrected := 0, 0
	for trial := 0; trial < 500; trial++ {
		rec := append([]byte(nil), clean...)
		pos := rng.Perm(len(rec))[:p/2+1+rng.Intn(3)]
		for _, i := range pos {
			rec[i] ^= byte(1 + rng.Intn(255))
		}
		before := append([]byte(nil), rec...)
		_, ok := rsDecode(rec, p)
		if ok {
			// Beyond-t patterns may land in another codeword's ball —
			// that is a legitimate (mis)decode, not detectable. But it
			// must yield a valid codeword.
			var synd [maxParity]byte
			if syndromes(rec, synd[:p]) {
				t.Fatalf("trial %d: ok=true but syndromes nonzero", trial)
			}
			miscorrected++
			continue
		}
		detected++
		// On failure the buffer must be exactly as received.
		for i := range rec {
			if rec[i] != before[i] {
				t.Fatalf("trial %d: failed decode mutated buffer at %d", trial, i)
			}
		}
	}
	if detected == 0 {
		t.Fatal("no beyond-t pattern was detected")
	}
	if miscorrected > detected {
		t.Fatalf("miscorrection dominates: %d miscorrected vs %d detected", miscorrected, detected)
	}
}

func TestLayoutFor(t *testing.T) {
	// WiFi capacity 125 bits → 15 symbols, one codeword, even parity ≥ 2.
	lay, err := LayoutFor(125, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if lay.TotalSyms != 15 || lay.Depth != 1 {
		t.Fatalf("unexpected layout %+v", lay)
	}
	if lay.CWParity[0]%2 != 0 || lay.CWParity[0] < 2 {
		t.Fatalf("parity %d not even >= 2", lay.CWParity[0])
	}
	if lay.DataBits()+8*lay.CWParity[0] != lay.CodedBits() {
		t.Fatalf("bits don't add up: %d data + %d parity syms vs %d coded",
			lay.DataBits(), lay.CWParity[0], lay.CodedBits())
	}

	// Interleave 2 over ZigBee's 50 bits → 6 symbols in 2 codewords of 3.
	// Each would need parity 2 leaving 1 data symbol — valid.
	lay2, err := LayoutFor(50, Config{N: 255, K: 223, Interleave: 2})
	if err != nil {
		t.Fatal(err)
	}
	if lay2.Depth != 2 || lay2.DataBits() != 2*8 {
		t.Fatalf("unexpected interleaved layout %+v", lay2)
	}

	// Too small: capacity under one symbol plus parity.
	if _, err := LayoutFor(7, Config{}); err == nil {
		t.Fatal("expected error for sub-symbol capacity")
	}
	if _, err := LayoutFor(24, Config{N: 255, K: 223, Interleave: 3}); err == nil {
		t.Fatal("expected error: 1 symbol per codeword cannot hold parity")
	}
}

func TestConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		cfg  Config
		want bool
	}{
		{Config{}, true}, // defaults
		{Config{N: 255, K: 223}, true},
		{Config{N: 15, K: 11, Interleave: 4}, true},
		{Config{N: 2, K: 1}, false},
		{Config{N: 256, K: 200}, false},
		{Config{N: 255, K: 255}, false},
		{Config{N: 255, K: 0}, false},
		{Config{N: 255, K: 100}, false}, // parity 155 > maxParity
		{Config{N: 255, K: 223, Interleave: -1}, false},
		{Config{N: 255, K: 223, Interleave: 33}, false},
	} {
		err := tc.cfg.Validate()
		if (err == nil) != tc.want {
			t.Errorf("Validate(%+v) = %v, want ok=%v", tc.cfg, err, tc.want)
		}
	}
}

func TestEncodeDecodeBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, cap := range []int{125, 50, 129, 124} { // the four radio capacities
		for _, il := range []int{1, 2} {
			cfg := Config{N: 255, K: 223, Interleave: il}
			lay, err := LayoutFor(cap, cfg)
			if err != nil {
				t.Fatalf("cap=%d il=%d: %v", cap, il, err)
			}
			data := make([]byte, lay.DataBits())
			for i := range data {
				data[i] = byte(rng.Intn(2))
			}
			coded, err := lay.EncodeBits(data)
			if err != nil {
				t.Fatal(err)
			}
			if len(coded) != lay.CodedBits() {
				t.Fatalf("coded length %d != %d", len(coded), lay.CodedBits())
			}

			// Clean round-trip.
			got, corrected, ok := lay.DecodeBits(coded)
			if !ok || corrected != 0 {
				t.Fatalf("cap=%d il=%d: clean decode ok=%v corrected=%d", cap, il, ok, corrected)
			}
			for i := range data {
				if got[i] != data[i] {
					t.Fatalf("cap=%d il=%d: bit %d differs", cap, il, i)
				}
			}

			// Corrupt one full symbol per codeword (t >= 1 everywhere).
			bad := append([]byte(nil), coded...)
			for c := 0; c < lay.Depth; c++ {
				for j := 0; j < 8; j++ {
					bad[c*8+j] ^= 1 // symbol positions c are codeword c's first symbols
				}
			}
			got, corrected, ok = lay.DecodeBits(bad)
			if !ok || corrected != lay.Depth {
				t.Fatalf("cap=%d il=%d: corrupted decode ok=%v corrected=%d want %d",
					cap, il, ok, corrected, lay.Depth)
			}
			for i := range data {
				if got[i] != data[i] {
					t.Fatalf("cap=%d il=%d: corrected bit %d differs", cap, il, i)
				}
			}
		}
	}
}

func TestInterleaveSpreadsBursts(t *testing.T) {
	// With depth 2, a burst of 2 adjacent symbols lands on different
	// codewords, so each sees one error — correctable at t=1. The same
	// burst on depth 1 with t=1 is two errors in one codeword — it must
	// NOT decode successfully to the wrong thing silently.
	cfg2 := Config{N: 255, K: 223, Interleave: 2}
	lay2, err := LayoutFor(129, cfg2) // Bluetooth: 16 symbols
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, lay2.DataBits())
	for i := range data {
		data[i] = byte(rng.Intn(2))
	}
	coded, err := lay2.EncodeBits(data)
	if err != nil {
		t.Fatal(err)
	}
	// Burst: two adjacent symbols (positions 4, 5 → codewords 0 and 1).
	for j := 32; j < 48; j++ {
		coded[j] ^= 1
	}
	got, corrected, ok := lay2.DecodeBits(coded)
	if !ok || corrected != 2 {
		t.Fatalf("interleaved burst: ok=%v corrected=%d", ok, corrected)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("interleaved burst: bit %d differs", i)
		}
	}
}

func TestCombiner(t *testing.T) {
	// Single attempt: slicing must reproduce the hard decision.
	soft := []int16{5, -3, 1, -1, SoftScale, -SoftScale}
	var c Combiner
	c.Reset(len(soft))
	c.Add(soft)
	got := make([]byte, len(soft))
	c.Slice(got)
	want := []byte{0, 1, 0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("single-attempt slice[%d] = %d want %d", i, got[i], want[i])
		}
	}
	solo := make([]byte, len(soft))
	SliceSoft(soft, solo)
	for i := range want {
		if solo[i] != want[i] {
			t.Fatalf("SliceSoft[%d] = %d want %d", i, solo[i], want[i])
		}
	}

	// Combining: a strong correct attempt outvotes a weak wrong one.
	c.Reset(2)
	c.Add([]int16{-10, 20})  // weak: bit0=1, bit1=0
	c.Add([]int16{300, -90}) // strong: bit0=0, bit1=1
	out := make([]byte, 2)
	c.Slice(out)
	if out[0] != 0 || out[1] != 1 {
		t.Fatalf("combined slice = %v, want [0 1]", out)
	}
	if c.Attempts() != 2 {
		t.Fatalf("attempts = %d", c.Attempts())
	}

	// Tie slices to 0.
	c.Reset(1)
	c.Add([]int16{7})
	c.Add([]int16{-7})
	c.Slice(out[:1])
	if out[0] != 0 {
		t.Fatalf("tie sliced to %d, want 0", out[0])
	}
}
