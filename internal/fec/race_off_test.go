//go:build !race

package fec

const raceEnabled = false
