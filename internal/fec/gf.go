// Package fec is the coded tag uplink: a Reed-Solomon code over GF(2^8)
// applied to tag payload chunks, plus the soft chase-combiner that merges
// the per-bit soft decisions of failed chunk attempts across
// retransmissions. GuardRider (arXiv:1912.06493) measured raw codeword-
// translation uplinks to be unusable in the wild without FEC; this package
// supplies the code and the combining substrate the retransmission ladder
// in freerider.Send stands on.
//
// The code is systematic RS(n, k) over GF(2^8) with the 0x11d field
// polynomial, shortened per chunk: Config names reference dimensions
// (default the CCSDS-flavoured RS(255, 223)) and LayoutFor scales the
// parity share down to the handful of symbols a single excitation packet
// carries, optionally interleaving several codewords across the chunk so a
// burst of adjacent window errors lands on different codewords.
//
// Everything here is a pure function of its inputs — no RNG, no clocks —
// so coded sessions inherit the repo's bit-identical parallelism for free.
package fec

// GF(2^8) arithmetic with the 0x11d (x^8+x^4+x^3+x^2+1) reduction
// polynomial and generator element α = 2. expTab is doubled so products of
// logs never need a mod-255 reduction.
var (
	expTab [512]byte
	logTab [256]int16
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTab[i] = byte(x)
		logTab[x] = int16(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		expTab[i] = expTab[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTab[int(logTab[a])+int(logTab[b])]
}

// gfDiv divides a by b; b must be nonzero.
func gfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	return expTab[int(logTab[a])-int(logTab[b])+255]
}

// gfInv returns the multiplicative inverse of a nonzero element.
func gfInv(a byte) byte { return expTab[255-int(logTab[a])] }

// gfPow returns α^n for n >= 0.
func gfPow(n int) byte { return expTab[n%255] }
