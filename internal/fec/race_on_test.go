//go:build race

package fec

// raceEnabled gates the AllocsPerRun pins: the race runtime adds
// bookkeeping allocations that would make the budgets meaningless.
const raceEnabled = true
