package fec

import (
	"math/rand"
	"testing"
)

// The WiFi chunk geometry: 15 symbols, parity 2 (t=1), 13 data.
func wifiCodeword(seed int64) (data, clean []byte, parity int) {
	rng := rand.New(rand.NewSource(seed))
	data = make([]byte, 13)
	rng.Read(data)
	parity = 2
	clean = make([]byte, len(data)+parity)
	copy(clean, data)
	rsEncode(data, clean[len(data):])
	return data, clean, parity
}

func BenchmarkRSEncode(b *testing.B) {
	data, clean, parity := wifiCodeword(1)
	out := make([]byte, parity)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rsEncode(data, out)
	}
	_ = clean
}

func BenchmarkRSDecode(b *testing.B) {
	_, clean, parity := wifiCodeword(2)
	rec := make([]byte, len(clean))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(rec, clean)
		rec[3] ^= 0x5a // one symbol error, inside t
		if _, ok := rsDecode(rec, parity); !ok {
			b.Fatal("decode failed")
		}
	}
}

// The symbol-level encode/decode hot path must stay allocation-free: it
// runs once per packet attempt inside the zero-allocation session loop.
func TestRSAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc budgets are meaningless under the race detector")
	}
	data, clean, parity := wifiCodeword(3)
	out := make([]byte, parity)
	// Warm the generator cache and the scratch pool outside the measured
	// window; steady-state is what the session loop sees.
	rsEncode(data, out)
	rec := make([]byte, len(clean))
	copy(rec, clean)
	rec[0] ^= 1
	rsDecode(rec, parity)

	if n := testing.AllocsPerRun(200, func() {
		rsEncode(data, out)
	}); n != 0 {
		t.Fatalf("rsEncode allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		copy(rec, clean)
		rec[5] ^= 0x31
		if _, ok := rsDecode(rec, parity); !ok {
			t.Fatal("decode failed")
		}
	}); n != 0 {
		t.Fatalf("rsDecode allocates %v per run, want 0", n)
	}
}
