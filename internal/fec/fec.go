package fec

import "fmt"

// Config selects the Reed-Solomon code applied to each tag payload chunk.
// N and K name the reference code dimensions — the (255, 223) default is
// the classic deep-space code — and only their ratio matters: LayoutFor
// shortens the code to the symbols one excitation packet carries, keeping
// the parity share (N−K)/N. Interleave spreads the chunk's symbols
// round-robin across that many independent codewords so a burst of
// adjacent corrupted windows lands on different codewords; 0 means 1.
type Config struct {
	N          int `json:"n"`
	K          int `json:"k"`
	Interleave int `json:"interleave,omitempty"`
}

// DefaultConfig is the interleaved shortened RS(255, 223)-style code used
// when a caller enables coding without picking dimensions.
func DefaultConfig() Config { return Config{N: 255, K: 223, Interleave: 1} }

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.N == 0 && c.K == 0 {
		c.N, c.K = d.N, d.K
	}
	if c.Interleave == 0 {
		c.Interleave = d.Interleave
	}
	return c
}

// Validate rejects configs that cannot produce a working code.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.N < 3 || c.N > maxN {
		return fmt.Errorf("fec: n must be in [3, %d], got %d", maxN, c.N)
	}
	if c.K <= 0 || c.K >= c.N {
		return fmt.Errorf("fec: k must be in [1, n-1], got k=%d n=%d", c.K, c.N)
	}
	if c.N-c.K > maxParity {
		return fmt.Errorf("fec: n-k must be <= %d, got %d", maxParity, c.N-c.K)
	}
	if c.Interleave < 0 || c.Interleave > 32 {
		return fmt.Errorf("fec: interleave must be in [0, 32], got %d", c.Interleave)
	}
	return nil
}

// Layout is the concrete shortened code for one chunk capacity: how the
// chunk's symbols split into interleaved codewords and how many of them
// are parity. It is a pure function of (capacity, Config) — both sides of
// the link derive it independently.
type Layout struct {
	Config    Config // normalized (defaults filled)
	TotalSyms int    // symbols the chunk carries (capacityBits/8)
	Depth     int    // interleaved codewords
	CWSyms    []int  // per-codeword total symbols
	CWParity  []int  // per-codeword parity symbols
	dataSyms  int
}

// LayoutFor shortens cfg to a chunk of capacityBits tag bits. Symbols are
// 8 tag bits each; a trailing partial byte is left uncoded (unused).
func LayoutFor(capacityBits int, cfg Config) (Layout, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Layout{}, err
	}
	total := capacityBits / 8
	depth := cfg.Interleave
	if depth > total {
		depth = total
	}
	if total == 0 || depth == 0 {
		return Layout{}, fmt.Errorf("fec: capacity %d bits holds no full symbol", capacityBits)
	}
	lay := Layout{
		Config:    cfg,
		TotalSyms: total,
		Depth:     depth,
		CWSyms:    make([]int, depth),
		CWParity:  make([]int, depth),
	}
	for c := 0; c < depth; c++ {
		syms := total / depth
		if c < total%depth {
			syms++
		}
		// Scale the reference parity share to the shortened length,
		// rounding to the nearest even count (t must be whole) with a
		// floor of 2 so every codeword can correct at least one symbol.
		parity := (2*syms*(cfg.N-cfg.K) + cfg.N) / (2 * cfg.N)
		parity = (parity + 1) &^ 1
		if parity < 2 {
			parity = 2
		}
		if syms <= parity {
			return Layout{}, fmt.Errorf("fec: chunk too small for code: codeword %d has %d symbols, %d parity", c, syms, parity)
		}
		lay.CWSyms[c] = syms
		lay.CWParity[c] = parity
		lay.dataSyms += syms - parity
	}
	return lay, nil
}

// DataBits is the number of payload bits the coded chunk carries.
func (l Layout) DataBits() int { return l.dataSyms * 8 }

// CodedBits is the number of transmitted tag bits the layout occupies
// (always a multiple of 8; tail bits beyond it stay uncoded filler).
func (l Layout) CodedBits() int { return l.TotalSyms * 8 }

// cwFor maps a chunk symbol position to (codeword, within-codeword index).
// Round-robin: position s belongs to codeword s % depth.
func (l Layout) cwFor(s int) (cw, idx int) { return s % l.Depth, s / l.Depth }

// packSymbols packs bits (0/1 bytes, LSB-first within each symbol, the
// same order bits.FromBytes uses) into out[:len(bits)/8].
func packSymbols(bits []byte, out []byte) {
	for i := range out {
		var b byte
		for j := 0; j < 8; j++ {
			b |= (bits[i*8+j] & 1) << uint(j)
		}
		out[i] = b
	}
}

// unpackSymbols expands syms into out (0/1 bytes, LSB-first).
func unpackSymbols(syms []byte, out []byte) {
	for i, s := range syms {
		for j := 0; j < 8; j++ {
			out[i*8+j] = (s >> uint(j)) & 1
		}
	}
}

// EncodeBits encodes data (0/1 tag bits, exactly l.DataBits() of them)
// into a coded chunk of l.CodedBits() 0/1 bits: each codeword's data
// symbols followed by its parity, the codewords interleaved symbol-by-
// symbol across the chunk.
func (l Layout) EncodeBits(data []byte) ([]byte, error) {
	if len(data) != l.DataBits() {
		return nil, fmt.Errorf("fec: encode wants %d data bits, got %d", l.DataBits(), len(data))
	}
	dataSyms := make([]byte, l.dataSyms)
	packSymbols(data, dataSyms)

	// One rule binds both directions: walking the chunk positions in
	// order, a position whose within-codeword index falls in the codeword's
	// data region takes the next data symbol. Decode recovers data symbols
	// with the identical walk.
	coded := make([]byte, l.TotalSyms)
	cwData := make([][]byte, l.Depth)
	for c := range cwData {
		cwData[c] = make([]byte, 0, l.CWSyms[c]-l.CWParity[c])
	}
	di := 0
	for s := 0; s < l.TotalSyms; s++ {
		cw, idx := l.cwFor(s)
		if idx < l.CWSyms[cw]-l.CWParity[cw] {
			coded[s] = dataSyms[di]
			cwData[cw] = append(cwData[cw], dataSyms[di])
			di++
		}
	}
	// Parity per codeword, scattered into its tail positions in order.
	for c := 0; c < l.Depth; c++ {
		parity := make([]byte, l.CWParity[c])
		rsEncode(cwData[c], parity)
		for s := 0; s < l.TotalSyms; s++ {
			if cw, idx := l.cwFor(s); cw == c && idx >= l.CWSyms[c]-l.CWParity[c] {
				coded[s] = parity[idx-(l.CWSyms[c]-l.CWParity[c])]
			}
		}
	}

	out := make([]byte, l.CodedBits())
	unpackSymbols(coded, out)
	return out, nil
}

// DecodeBits RS-decodes a received coded chunk (0/1 bits, at least
// l.CodedBits() of them; extra trailing bits are ignored). It returns the
// recovered data bits, the total corrected symbol count, and whether every
// codeword decoded to a valid RS codeword. On a codeword failure its raw
// hard-decision data symbols are passed through, so callers can still
// compare against ground truth or chase-combine and retry.
func (l Layout) DecodeBits(coded []byte) (data []byte, corrected int, ok bool) {
	if len(coded) < l.CodedBits() {
		return nil, 0, false
	}
	syms := make([]byte, l.TotalSyms)
	packSymbols(coded[:l.CodedBits()], syms)

	// Deinterleave.
	cws := make([][]byte, l.Depth)
	for c := range cws {
		cws[c] = make([]byte, 0, l.CWSyms[c])
	}
	for s := 0; s < l.TotalSyms; s++ {
		cw, _ := l.cwFor(s)
		cws[cw] = append(cws[cw], syms[s])
	}

	ok = true
	for c := 0; c < l.Depth; c++ {
		n, good := rsDecode(cws[c], l.CWParity[c])
		corrected += n
		if !good {
			ok = false
		}
	}

	// Recover data symbols with the same chunk-order walk EncodeBits used.
	ordered := make([]byte, 0, l.dataSyms)
	for s := 0; s < l.TotalSyms; s++ {
		cw, idx := l.cwFor(s)
		if idx < l.CWSyms[cw]-l.CWParity[cw] {
			ordered = append(ordered, cws[cw][idx])
		}
	}

	data = make([]byte, l.DataBits())
	unpackSymbols(ordered, data)
	return data, corrected, ok
}
