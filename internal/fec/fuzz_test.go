package fec

import (
	"math/rand"
	"testing"
)

// FuzzRSRoundTrip drives the encode→corrupt→decode loop from fuzzer
// entropy: random (k, parity) geometry, random payload, then a mix of
// symbol erasures (full-symbol corruption) and soft-value perturbations
// (bit flips, the post-slice image of a noisy soft decision). Invariants:
// decode never panics; <= t corruptions always decode back to the exact
// payload; any claimed success is a true codeword (zero syndromes); any
// failure leaves the buffer untouched.
func FuzzRSRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(4), uint8(2))
	f.Add(int64(2), uint8(13), uint8(2), uint8(0))
	f.Add(int64(3), uint8(100), uint8(16), uint8(12))
	f.Fuzz(func(t *testing.T, seed int64, kb, pb, errsB uint8) {
		k := 1 + int(kb)%120
		parity := 2 + 2*(int(pb)%8) // even, 2..16
		errs := int(errsB) % (parity + 2)
		rng := rand.New(rand.NewSource(seed))

		data := make([]byte, k)
		rng.Read(data)
		clean := make([]byte, k+parity)
		copy(clean, data)
		rsEncode(data, clean[k:])

		rec := append([]byte(nil), clean...)
		perm := rng.Perm(len(rec))[:errs]
		for i, p := range perm {
			if i%2 == 0 {
				rec[p] ^= byte(1 + rng.Intn(255)) // symbol erasure image
			} else {
				rec[p] ^= 1 << uint(rng.Intn(8)) // single soft-slice bit flip
			}
		}
		before := append([]byte(nil), rec...)

		n, ok := rsDecode(rec, parity)
		switch {
		case errs <= parity/2:
			if !ok {
				t.Fatalf("k=%d p=%d errs=%d: decode failed within t", k, parity, errs)
			}
			for i := range clean {
				if rec[i] != clean[i] {
					t.Fatalf("k=%d p=%d errs=%d: wrong symbol %d", k, parity, errs, i)
				}
			}
			if n > errs {
				t.Fatalf("corrected %d > injected %d", n, errs)
			}
		case ok:
			var synd [maxParity]byte
			if syndromes(rec, synd[:parity]) {
				t.Fatal("claimed success but syndromes nonzero")
			}
		default:
			for i := range rec {
				if rec[i] != before[i] {
					t.Fatalf("failed decode mutated buffer at %d", i)
				}
			}
		}
	})
}

// FuzzCombinerSlice checks that slicing arbitrary soft-value streams never
// panics and agrees with the sign convention, including the single-attempt
// identity with SliceSoft.
func FuzzCombinerSlice(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, attempts uint8) {
		if len(raw) < 2 {
			return
		}
		bits := len(raw) / 2
		soft := make([]int16, bits)
		for i := 0; i < bits; i++ {
			soft[i] = int16(uint16(raw[2*i]) | uint16(raw[2*i+1])<<8)
		}
		var c Combiner
		c.Reset(bits)
		n := 1 + int(attempts)%4
		for a := 0; a < n; a++ {
			c.Add(soft)
		}
		combined := make([]byte, bits)
		c.Slice(combined)
		solo := make([]byte, bits)
		SliceSoft(soft, solo)
		for i := range combined {
			if combined[i] != solo[i] {
				t.Fatalf("N identical attempts sliced differently at %d", i)
			}
		}
	})
}
