package fec

// SoftScale is the nominal magnitude of a full-confidence soft decision.
// Decoder soft outputs are normalized margins in [-SoftScale, SoftScale]:
// positive means bit 0, negative means bit 1, and |s| grows with the
// decision margin. A hard decision with zero margin is emitted as ±1 (never
// 0) so a single attempt sliced through the combiner is bit-identical to
// the hard decision it came from.
const SoftScale = 1024

// Combiner chase-combines the per-bit soft decisions of successive
// transmissions of the same chunk. Accumulation is plain int32 addition in
// attempt order — a deterministic pure fold, so combined decodes stay
// bit-identical between Run and RunParallel as long as attempts are fed in
// the same order. Not safe for concurrent use; each in-flight chunk owns
// its own Combiner.
type Combiner struct {
	acc []int32
	n   int
}

// Reset clears the accumulator for a chunk of the given bit length.
// It must be called between chunks and whenever the transmission scheme
// changes (e.g. quaternary→binary fallback re-plans the layout, so soft
// values from the old scheme no longer align bit-for-bit).
func (c *Combiner) Reset(bits int) {
	if cap(c.acc) < bits {
		c.acc = make([]int32, bits)
	}
	c.acc = c.acc[:bits]
	for i := range c.acc {
		c.acc[i] = 0
	}
	c.n = 0
}

// Add accumulates one attempt's soft decisions. len(soft) must equal the
// Reset length.
func (c *Combiner) Add(soft []int16) {
	if len(soft) != len(c.acc) {
		panic("fec: combiner length mismatch")
	}
	for i, s := range soft {
		c.acc[i] += int32(s)
	}
	c.n++
}

// Attempts is the number of soft vectors accumulated since Reset.
func (c *Combiner) Attempts() int { return c.n }

// Slice re-slices the combined soft values to hard bits in dst (0/1
// bytes). Ties (an exactly cancelled accumulator) slice to 0, matching the
// hard-decision convention that only positive mismatch evidence flips a
// bit. dst must have the Reset length.
func (c *Combiner) Slice(dst []byte) {
	if len(dst) != len(c.acc) {
		panic("fec: combiner length mismatch")
	}
	for i, a := range c.acc {
		if a < 0 {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}

// SliceSoft slices a single soft vector without accumulation — the
// degenerate one-attempt path, exposed so callers can check what a solo
// decode of one attempt would have produced (combining-gain accounting).
func SliceSoft(soft []int16, dst []byte) {
	for i, s := range soft {
		if s < 0 {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}
