package fec

import (
	"sync"

	"repro/internal/signal"
)

// maxParity bounds the redundancy of any code this package will build: 64
// parity symbols is t=32, already far beyond what a single excitation
// packet's chunk can carry. maxN is the full-length RS(255, ·) block.
const (
	maxParity = 64
	maxN      = 255
)

// Generator polynomials are cached per parity count: g(x) = Π_{i=0}^{p-1}
// (x − α^i), stored low-degree-first with the monic leading coefficient
// omitted. A session only ever uses one or two parity sizes so the cache
// stays tiny.
var (
	genMu  sync.Mutex
	genTab = map[int][]byte{}
)

func generator(parity int) []byte {
	genMu.Lock()
	defer genMu.Unlock()
	if g, ok := genTab[parity]; ok {
		return g
	}
	// Build Π(x − α^i) low-degree-first (g[j] multiplies x^j).
	g := make([]byte, 1, parity+1)
	g[0] = 1
	for i := 0; i < parity; i++ {
		root := gfPow(i)
		g = append(g, 0)
		for j := len(g) - 1; j >= 1; j-- {
			g[j] = g[j-1] ^ gfMul(g[j], root)
		}
		g[0] = gfMul(g[0], root)
	}
	// Drop the monic x^parity term; the LFSR only needs the remainder
	// coefficients.
	lfsr := make([]byte, parity)
	copy(lfsr, g[:parity])
	genTab[parity] = lfsr
	return lfsr
}

// rsEncode computes the systematic parity for data into parity (whose
// length selects the code's redundancy). The transmitted codeword is data
// followed by parity, highest-degree symbol first — the usual shortened-RS
// convention where rec[0] multiplies x^{n-1}.
func rsEncode(data []byte, parity []byte) {
	for i := range parity {
		parity[i] = 0
	}
	p := len(parity)
	if p == 0 {
		return
	}
	g := generator(p)
	// Polynomial long division of data(x)·x^p by g(x): parity holds the
	// running remainder, parity[0] the highest-degree coefficient.
	for _, d := range data {
		fb := d ^ parity[0]
		copy(parity, parity[1:])
		parity[p-1] = 0
		if fb != 0 {
			lf := int(logTab[fb])
			for j := 0; j < p; j++ {
				if c := g[p-1-j]; c != 0 {
					parity[j] ^= expTab[lf+int(logTab[c])]
				}
			}
		}
	}
}

// rsScratch is the per-decode working set, pooled so the hot path stays
// allocation-free. Arrays are sized for the largest standard code.
type rsScratch struct {
	synd  [maxParity]byte
	lam   [maxParity + 1]byte
	prev  [maxParity + 1]byte
	tmp   [maxParity + 1]byte
	omega [maxParity]byte
	locs  [maxParity]int
	orig  [maxN]byte
}

var scratchPool = signal.FreeList[*rsScratch]{New: func() *rsScratch { return new(rsScratch) }}

// syndromes fills out[:parity] with S_i = rec(α^i) via Horner (rec[0] is
// the highest-degree symbol) and reports whether any is nonzero.
func syndromes(rec []byte, out []byte) bool {
	any := false
	for i := range out {
		x := gfPow(i)
		var acc byte
		for _, r := range rec {
			acc = gfMul(acc, x) ^ r
		}
		out[i] = acc
		if acc != 0 {
			any = true
		}
	}
	return any
}

// rsDecode corrects rec (a shortened systematic codeword: data followed by
// `parity` trailing parity symbols) in place. It returns the number of
// symbol corrections applied and whether the result is a valid codeword.
// On failure rec is left exactly as received so the caller can fall back
// to the raw hard-decision symbols or chase-combine and retry.
func rsDecode(rec []byte, parity int) (corrected int, ok bool) {
	n := len(rec)
	if parity <= 0 {
		return 0, true
	}
	if parity > maxParity || n > maxN || n <= parity {
		return 0, false
	}
	sc := scratchPool.Get()
	defer scratchPool.Put(sc)

	synd := sc.synd[:parity]
	if !syndromes(rec, synd) {
		return 0, true
	}

	// Berlekamp–Massey for the error locator Λ(x), low-degree-first.
	lam := sc.lam[:]
	prev := sc.prev[:]
	tmp := sc.tmp[:]
	for i := range lam {
		lam[i], prev[i] = 0, 0
	}
	lam[0], prev[0] = 1, 1
	var (
		l int
		m      = 1
		b byte = 1
	)
	for i := 0; i < parity; i++ {
		var delta byte
		for j := 0; j <= l; j++ {
			delta ^= gfMul(lam[j], synd[i-j])
		}
		if delta == 0 {
			m++
			continue
		}
		coef := gfDiv(delta, b)
		if 2*l <= i {
			copy(tmp, lam)
			for j := 0; j+m <= maxParity; j++ {
				lam[j+m] ^= gfMul(coef, prev[j])
			}
			copy(prev, tmp)
			l = i + 1 - l
			b = delta
			m = 1
		} else {
			for j := 0; j+m <= maxParity; j++ {
				lam[j+m] ^= gfMul(coef, prev[j])
			}
			m++
		}
	}
	deg := maxParity
	for deg > 0 && lam[deg] == 0 {
		deg--
	}
	if deg == 0 || deg != l || deg > parity/2 {
		return 0, false
	}

	// Chien search over the shortened positions: symbol index k (0 = the
	// x^{n-1} coefficient) has locator X_k = α^{n-1-k}; it is an error
	// position iff Λ(X_k^{-1}) = 0.
	locs := sc.locs[:0]
	for k := 0; k < n; k++ {
		xi := gfInvPow(n - 1 - k)
		var acc byte
		for j := deg; j >= 0; j-- {
			acc = gfMul(acc, xi) ^ lam[j]
		}
		if acc == 0 {
			locs = append(locs, k)
			if len(locs) > deg {
				return 0, false
			}
		}
	}
	if len(locs) != deg {
		return 0, false
	}

	// Forney with first root α^0: Ω(x) = S(x)·Λ(x) mod x^{2t} truncated
	// to degree deg-1; e_k = X_k · Ω(X_k^{-1}) / Λ'(X_k^{-1}).
	omega := sc.omega[:deg]
	for i := 0; i < deg; i++ {
		var acc byte
		for j := 0; j <= i && j <= deg; j++ {
			acc ^= gfMul(lam[j], synd[i-j])
		}
		omega[i] = acc
	}

	copy(sc.orig[:n], rec)
	for _, k := range locs {
		e := n - 1 - k
		xi := gfInvPow(e)
		var om byte
		for j := deg - 1; j >= 0; j-- {
			om = gfMul(om, xi) ^ omega[j]
		}
		// Λ'(x) in char 2 keeps only odd-power terms: Σ λ_j x^{j-1}.
		var dl byte
		xp := byte(1) // xi^{j-1} for the current odd j
		for j := 1; j <= deg; j += 2 {
			dl ^= gfMul(lam[j], xp)
			xp = gfMul(xp, gfMul(xi, xi))
		}
		if dl == 0 {
			return 0, false
		}
		rec[k] ^= gfMul(gfPow(e), gfDiv(om, dl))
	}

	// Re-verify: a pattern with more than t errors can slip through
	// BM/Chien as a plausible miscorrection but leaves nonzero syndromes.
	// Roll the buffer back so the caller sees the untouched input.
	if syndromes(rec, synd) {
		copy(rec, sc.orig[:n])
		return 0, false
	}
	return deg, true
}

// gfInvPow returns α^{-e} for e >= 0.
func gfInvPow(e int) byte { return expTab[(255-e%255)%255] }
