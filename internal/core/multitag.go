package core

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/decoder"
	"repro/internal/tag"
	"repro/internal/wifi"
)

// MultiTagResult reports a sample-level collision experiment: several tags
// backscattering the same excitation packet into the same receiver.
type MultiTagResult struct {
	Detected bool
	// PerTagBER is each tag's bit error rate against its own data, decoded
	// as if that tag were alone (the comparison the MAC uses to declare a
	// slot collided).
	PerTagBER []float64
	// MeanMismatch is the average window mismatch fraction of the decoded
	// stream: near 0/1 for a single tag, near 0.5 under collision.
	MeanMismatch float64
}

// RunCollision transmits one WiFi excitation packet and lets every tag in
// tagData backscatter it simultaneously (as happens when Aloha tags pick
// the same slot). The superposed reflections reach the receiver; the
// decoder then tries to extract each tag's bits. With a single tag this
// reduces to the normal pipeline; with two or more the phase sum destroys
// the codeword structure and every tag's BER collapses toward 0.5 — the
// physical justification for the MAC treating shared slots as lost.
func (s *Session) RunCollision(tagData [][]byte) (MultiTagResult, error) {
	if s.cfg.Radio != WiFi {
		return MultiTagResult{}, fmt.Errorf("core: collision study implemented for WiFi excitation")
	}
	if len(tagData) == 0 {
		return MultiTagResult{}, fmt.Errorf("core: need at least one tag")
	}
	// A collision run occupies a packet slot of the fault timeline like any
	// other transmission.
	slot := s.slot
	s.slot++
	pf := s.cfg.Faults.At(s.cfg.Seed, slot)
	if pf.Outage {
		return MultiTagResult{PerTagBER: ones(len(tagData))}, nil
	}
	rate := wifi.Rates[s.cfg.WiFiRateMbps]
	psdu := s.wifiPSDU(s.rng)
	exc, err := s.wifiTX.Transmit(psdu, rate)
	if err != nil {
		return MultiTagResult{}, err
	}

	nSym := wifi.NumDataSymbols(len(psdu), rate)
	ref := make([]byte, nSym*rate.NDBPS)
	copy(ref[wifi.ServiceBits:], bits.FromBytes(psdu))

	// Each tag modulates its own copy; reflections sum at the receiver
	// (equal path gains: the worst-case collision).
	var sum = exc.Clone()
	sum.Scale(0) // start from silence at the excitation's length
	used := make([]int, len(tagData))
	for i, data := range tagData {
		mod, u, err := s.translator().Translate(exc, data)
		if err != nil {
			return MultiTagResult{}, err
		}
		used[i] = u
		sh := tag.ChannelShifter{OffsetHz: 20e6, Mode: tag.ShiftEquivalentBaseband}
		if _, err := sh.Shift(mod); err != nil {
			return MultiTagResult{}, err
		}
		mod.Scale(complex(1/float64(len(tagData)), 0))
		if err := sum.Add(mod, 0); err != nil {
			return MultiTagResult{}, err
		}
	}

	cap, err := s.link(s.rng, pf).Apply(sum, 400, false)
	if err != nil {
		return MultiTagResult{}, err
	}
	rx := wifi.NewReceiver()
	rx.DetectionThreshold = s.cfg.detectionThreshold(wifiDetectionThreshold)
	pkt, err := rx.Receive(cap)
	if err != nil || len(pkt.PSDU) != len(psdu) {
		return MultiTagResult{PerTagBER: ones(len(tagData))}, nil
	}

	window := s.cfg.Redundancy * rate.NDBPS
	ws, _, err := decoder.DecodeWindows(ref[rate.NDBPS:], pkt.RawBits[rate.NDBPS:], window, 0.5)
	if err != nil {
		return MultiTagResult{}, err
	}
	res := MultiTagResult{Detected: true, PerTagBER: make([]float64, len(tagData))}
	var mism float64
	for _, w := range ws {
		mism += w.MismatchFraction
	}
	if len(ws) > 0 {
		res.MeanMismatch = mism / float64(len(ws))
	}
	decoded := decoder.Bits(ws)
	for i, data := range tagData {
		n := used[i]
		if len(decoded) < n {
			n = len(decoded)
		}
		if n == 0 {
			res.PerTagBER[i] = 1
			continue
		}
		e, _, _ := decoder.BER(data[:n], decoded[:n])
		res.PerTagBER[i] = float64(e) / float64(n)
	}
	return res, nil
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
