package core

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/waveform"
)

// TestWaveformCacheBitIdentical is the correctness contract of TX
// memoization: attaching a waveform cache must not change a single bit of
// any SessionResult, for any radio, including the second pass that runs
// entirely on warm hits.
func TestWaveformCacheBitIdentical(t *testing.T) {
	cases := []struct {
		radio Radio
		dist  float64
	}{
		{WiFi, 10},
		{ZigBee, 8},
		{Bluetooth, 6},
	}
	const packets = 3
	for _, c := range cases {
		cfg := DefaultConfig(c.radio, c.dist)
		cfg.Seed = 99
		if c.radio == WiFi {
			cfg.PayloadSize = 400
		}
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := s.Run(packets)
		if err != nil {
			t.Fatal(err)
		}

		cfg.Waveforms = waveform.New(0)
		cs, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := cs.Run(packets)
		if err != nil {
			t.Fatal(err)
		}
		if cold != plain {
			t.Errorf("%v: cold cached run %+v != uncached %+v", c.radio, cold, plain)
		}
		st := cfg.Waveforms.Stats()
		if st.Misses != packets || st.Hits != 0 {
			t.Errorf("%v: cold pass stats %+v, want %d misses", c.radio, st, packets)
		}
		warm, err := cs.Run(packets)
		if err != nil {
			t.Fatal(err)
		}
		if warm != plain {
			t.Errorf("%v: warm cached run %+v != uncached %+v", c.radio, warm, plain)
		}
		if st := cfg.Waveforms.Stats(); st.Hits != packets {
			t.Errorf("%v: warm pass stats %+v, want %d hits", c.radio, st, packets)
		}
	}
}

// TestWaveformCacheQuaternaryBitIdentical covers the eq. 5 path, whose
// coded reference stream moves from lazy per-packet reconstruction to the
// cache entry.
func TestWaveformCacheQuaternaryBitIdentical(t *testing.T) {
	cfg := DefaultConfig(WiFi, 4)
	cfg.WiFiRateMbps = 12
	cfg.Quaternary = true
	cfg.PayloadSize = 400
	cfg.Seed = 21
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := s.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TagBitsDecoded == 0 {
		t.Fatal("quaternary run decoded nothing; test is vacuous")
	}
	cfg.Waveforms = waveform.New(0)
	cs, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		got, err := cs.Run(3)
		if err != nil {
			t.Fatal(err)
		}
		if got != plain {
			t.Errorf("pass %d: cached %+v != uncached %+v", pass, got, plain)
		}
	}
}

// TestWaveformCacheShardedBitIdentical pins the sharding refactor's
// correctness contract for every radio: a sharded cache and a single-shard
// cache must produce byte-identical SessionResults on both the cold pass
// (synthesis + insert paths) and the warm pass (lookup path), and both
// must match the uncached run. Sharding may only change which entries
// survive eviction pressure, never the bits an entry replays.
func TestWaveformCacheShardedBitIdentical(t *testing.T) {
	cases := []struct {
		radio Radio
		dist  float64
	}{
		{WiFi, 10},
		{ZigBee, 8},
		{Bluetooth, 6},
	}
	const packets = 3
	for _, c := range cases {
		cfg := DefaultConfig(c.radio, c.dist)
		cfg.Seed = 99
		if c.radio == WiFi {
			cfg.PayloadSize = 400
		}
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := s.Run(packets)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 16} {
			cfg.Waveforms = waveform.NewSharded(0, shards)
			cs, err := NewSession(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for pass, want := 0, 0; pass < 2; pass++ {
				got, err := cs.Run(packets)
				if err != nil {
					t.Fatal(err)
				}
				if got != plain {
					t.Errorf("%v shards=%d pass %d: cached run %+v != uncached %+v",
						c.radio, shards, pass, got, plain)
				}
				want += packets
				st := cfg.Waveforms.Stats()
				if int(st.Hits+st.Misses) != want || st.Misses != packets {
					t.Errorf("%v shards=%d pass %d: stats %+v, want %d misses total",
						c.radio, shards, pass, st, packets)
				}
			}
		}
	}
}

// TestWaveformCacheSharedAcrossSessions pins the cross-session reuse the
// cache exists for: two sessions with the same seed (hence identical packet
// content) but different link distances share every waveform — the second
// session runs entirely on hits while still seeing its own channel.
func TestWaveformCacheSharedAcrossSessions(t *testing.T) {
	c := waveform.New(0)
	const packets = 3
	var results [2]SessionResult
	for i, dist := range []float64{6, 45} {
		cfg := DefaultConfig(WiFi, dist)
		cfg.PayloadSize = 400
		cfg.Seed = 99
		cfg.Waveforms = c
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if results[i], err = s.Run(packets); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Misses != packets || st.Hits != packets {
		t.Fatalf("stats %+v: want %d misses then %d hits", st, packets, packets)
	}
	// 45 m is past the link collapse, so the far session must lose packets
	// the near one decodes — proof the shared waveforms still ran through
	// each session's own channel.
	if results[1].PacketsLost <= results[0].PacketsLost {
		t.Fatalf("far session lost %d packets vs near %d; channel draws are not independent",
			results[1].PacketsLost, results[0].PacketsLost)
	}
}

// TestContentSeedRunMatchesRunParallel extends the determinism contract to
// the split-stream mode: with a ContentSeed, Run and RunParallel must still
// agree for every worker count.
func TestContentSeedRunMatchesRunParallel(t *testing.T) {
	cfg := DefaultConfig(WiFi, 10)
	cfg.PayloadSize = 400
	cfg.Seed = 99
	cfg.ContentSeed = 17
	cfg.Waveforms = waveform.New(0)
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const packets = 3
	serial, err := s.Run(packets)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		par, err := s.RunParallel(packets, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par != serial {
			t.Errorf("workers=%d: parallel %+v != serial %+v", workers, par, serial)
		}
	}
}

// TestContentSeedSharesWaveformsAcrossSeeds is the sweep scenario: points
// with different channel seeds but one ContentSeed synthesise each packet
// once and replay it everywhere else.
func TestContentSeedSharesWaveformsAcrossSeeds(t *testing.T) {
	c := waveform.New(0)
	const packets = 3
	var results [2]SessionResult
	for i, seed := range []int64{101, 202} {
		// A marginal distance: whether packets survive depends on the
		// fading draw, so distinct channel seeds show up in the aggregate.
		cfg := DefaultConfig(WiFi, 25)
		cfg.PayloadSize = 400
		cfg.Seed = seed
		cfg.ContentSeed = 17
		cfg.Waveforms = c
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if results[i], err = s.Run(packets); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Misses != packets || st.Hits != packets {
		t.Fatalf("stats %+v: want %d misses then %d hits", st, packets, packets)
	}
	if results[0].PacketsLost == results[1].PacketsLost {
		t.Fatalf("both seeds lost %d packets; channel draws are not independent", results[0].PacketsLost)
	}
}

// TestRunPacketCacheKeepsScramblerRotation pins the one piece of TX state a
// WiFi cache hit must replay: the sequential RunPacket path rotates the
// scrambler seed per packet, and a hit has to advance it exactly like a
// synthesis would, or the cached and uncached sessions diverge from the
// second packet on.
func TestRunPacketCacheKeepsScramblerRotation(t *testing.T) {
	run := func(c *waveform.Cache) []PacketResult {
		cfg := DefaultConfig(WiFi, 6)
		cfg.PayloadSize = 400
		cfg.Seed = 5
		cfg.Waveforms = c
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tagBits := make([]byte, s.Capacity())
		for i := range tagBits {
			tagBits[i] = byte(i % 2)
		}
		out := make([]PacketResult, 3)
		for i := range out {
			if out[i], err = s.RunPacket(tagBits); err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	plain := run(nil)
	c := waveform.New(0)
	cold := run(c)
	warm := run(c) // same session config ⇒ every packet is a warm hit
	if st := c.Stats(); st.Hits != 3 || st.Misses != 3 {
		t.Fatalf("stats %+v: want 3 misses then 3 hits", st)
	}
	for i := range plain {
		if !reflect.DeepEqual(plain[i], cold[i]) || !reflect.DeepEqual(plain[i], warm[i]) {
			t.Errorf("packet %d: plain %+v, cold %+v, warm %+v", i, plain[i], cold[i], warm[i])
		}
	}
}
