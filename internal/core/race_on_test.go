//go:build race

package core

// raceEnabled reports that the race detector is instrumenting this build;
// allocation pins skip, since instrumentation forces locals to heap and
// randomises sync.Pool reuse.
const raceEnabled = true
