package core

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/simd"
)

// TestMain announces which SIMD dispatch path this process runs under.
// benchgate parses the "simd-dispatch:" line out of `go test -bench`
// output and records it with every trajectory point, so a benchmark
// number can always be traced to the kernel set that produced it — a
// baseline taken with the asm kernels is not comparable to a pure-Go
// run, and the gate warns when the paths differ.
func TestMain(m *testing.M) {
	fmt.Printf("simd-dispatch: %s\n", simd.Mode())
	os.Exit(m.Run())
}
