package core

import (
	"testing"

	"repro/internal/waveform"
)

// BenchmarkSessionRunPacket times one full sample-level backscatter packet
// (ambient TX → tag codeword translation → channel → receiver → tag
// decode) per radio on a warm Session. bench-dsp tracks its ns/op and
// allocs/op; the allocs figure is the steady-state heap traffic of the
// whole per-packet pipeline, so regressions in any pooled fast path show
// up here even when the kernel-level zero-alloc tests still pass.
func BenchmarkSessionRunPacket(b *testing.B) {
	for _, radio := range []Radio{WiFi, ZigBee, Bluetooth} {
		b.Run(radio.String(), func(b *testing.B) {
			cfg := DefaultConfig(radio, 5)
			s, err := NewSession(cfg)
			if err != nil {
				b.Fatal(err)
			}
			tagBits := make([]byte, s.Capacity())
			for i := range tagBits {
				tagBits[i] = byte(i) & 1
			}
			// Warm the signal/arena and session pools so b.N measures
			// steady state rather than first-packet pool fills.
			if _, err := s.RunPacket(tagBits); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.RunPacket(tagBits); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSessionRunPacketBatch is the batch pipeline's per-packet cost:
// DefaultBatchSize packets per RunPacketBatch call over a warm waveform
// cache and a fixed ContentSeed, so every iteration replays the same
// packet indices with cache-hit synthesis and the number measures the
// receive-side DSP the batch path amortises — channel, receiver, decode.
// ns/op is per packet (the loop strides by the batch size). The serial
// BenchmarkSessionRunPacket above stays as-is: the pair is the
// ROADMAP "sub-millisecond packet" scoreboard, cache half vs DSP half.
func BenchmarkSessionRunPacketBatch(b *testing.B) {
	for _, radio := range []Radio{WiFi, ZigBee, Bluetooth} {
		b.Run(radio.String(), func(b *testing.B) {
			cfg := DefaultConfig(radio, 5)
			cfg.Waveforms = waveform.New(0)
			cfg.ContentSeed = 7 // fixed content: replayed indices hit the cache
			s, err := NewSession(cfg)
			if err != nil {
				b.Fatal(err)
			}
			// Warm pools and populate the waveform cache for the batch.
			if _, err := s.RunPacketBatch(0, DefaultBatchSize); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += DefaultBatchSize {
				if _, err := s.RunPacketBatch(0, DefaultBatchSize); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
