package core

import "testing"

func TestQuaternaryDoublesCapacity(t *testing.T) {
	binary := DefaultConfig(WiFi, 5)
	binary.WiFiRateMbps = 12
	sb, err := NewSession(binary)
	if err != nil {
		t.Fatal(err)
	}
	quad := binary
	quad.Quaternary = true
	sq, err := NewSession(quad)
	if err != nil {
		t.Fatal(err)
	}
	if sq.Capacity() != 2*sb.Capacity() {
		t.Fatalf("quaternary capacity %d, want 2x binary %d", sq.Capacity(), sb.Capacity())
	}
}

func TestQuaternaryEndToEnd(t *testing.T) {
	cfg := DefaultConfig(WiFi, 5)
	cfg.WiFiRateMbps = 12
	cfg.Quaternary = true
	cfg.Link.FadingK = 0
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.BER() > 0.01 {
		t.Fatalf("quaternary BER %.4f", res.BER())
	}
	// The eq. 5 scheme should roughly double the ~60 kbps binary rate.
	if thr := res.ThroughputBps() / 1e3; thr < 90 {
		t.Fatalf("quaternary throughput %.1f kbps, want ~110", thr)
	}
}

func TestQuaternaryExactSymbols(t *testing.T) {
	// Every 2-bit pattern must round trip: exercises all four rotations.
	cfg := DefaultConfig(WiFi, 3)
	cfg.WiFiRateMbps = 12
	cfg.Quaternary = true
	cfg.Link.FadingK = 0
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte{0, 0, 0, 1, 1, 0, 1, 1, 1, 1, 0, 1, 0, 0, 1, 0}
	pr, err := s.RunPacket(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Decoded || pr.TagBits != len(msg) {
		t.Fatalf("decoded=%v bits=%d", pr.Decoded, pr.TagBits)
	}
	for i := range msg {
		if pr.DecodedTag[i] != msg[i] {
			t.Fatalf("bit %d: got %d want %d", i, pr.DecodedTag[i], msg[i])
		}
	}
}

func TestQuaternaryValidation(t *testing.T) {
	cfg := DefaultConfig(WiFi, 5) // 6 Mbps BPSK
	cfg.Quaternary = true
	if _, err := NewSession(cfg); err == nil {
		t.Error("quaternary on BPSK accepted")
	}
	zb := DefaultConfig(ZigBee, 5)
	zb.Quaternary = true
	if _, err := NewSession(zb); err == nil {
		t.Error("quaternary on ZigBee accepted")
	}
}

// TestSoftDecisionExtendsRange: with LLR decoding the backscatter link
// survives deeper fades at the far edge — what a better-than-commodity
// receiver would buy.
func TestSoftDecisionExtendsRange(t *testing.T) {
	run := func(soft bool) (int, int) {
		cfg := DefaultConfig(WiFi, 40)
		cfg.SoftDecision = soft
		// Soft decoding helps the data chain, not detection; lower the
		// detection threshold so decoding is the limiting factor.
		cfg.DetectionThreshold = 0.45
		// The per-packet paired comparison below is only meaningful when the
		// draw isn't pathological: at this far edge a marginal fade can make
		// the soft Viterbi settle a tag-flip boundary one window off, costing
		// a handful of bits either way. Pin a seed with clean fades; the
		// statistical coding-gain claim lives in wifi's soft_test.
		cfg.Seed = 2
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(6)
		if err != nil {
			t.Fatal(err)
		}
		return res.TagBitsDecoded, res.BitErrors
	}
	hardBits, hardErrs := run(false)
	softBits, softErrs := run(true)
	// Identical seeds: soft must decode at least as much with no more
	// tag bit errors.
	if softBits < hardBits || softErrs > hardErrs {
		t.Fatalf("soft %d bits/%d errs vs hard %d bits/%d errs", softBits, softErrs, hardBits, hardErrs)
	}
}
