// Package core assembles the FreeRider system end to end: a commodity
// excitation transmitter (802.11g/n WiFi, ZigBee, or Bluetooth), the tag's
// codeword translator and channel shifter, the radio link, the
// adjacent-channel commodity receiver, and the backscatter decoder that
// compares the two bit streams. Everything runs at sample level, so
// detection failures, bit errors and throughput all emerge from the PHY
// chains rather than from closed-form approximations.
package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bits"
	"repro/internal/bluetooth"
	"repro/internal/channel"
	"repro/internal/decoder"
	"repro/internal/faults"
	"repro/internal/fec"
	"repro/internal/runner"
	"repro/internal/signal"
	"repro/internal/tag"
	"repro/internal/waveform"
	"repro/internal/wifi"
	"repro/internal/zigbee"
)

// Radio identifies the excitation technology.
type Radio int

// Supported excitation radios.
const (
	WiFi Radio = iota
	ZigBee
	Bluetooth
)

// String names the radio.
func (r Radio) String() string {
	switch r {
	case WiFi:
		return "802.11g/n WiFi"
	case ZigBee:
		return "ZigBee"
	case Bluetooth:
		return "Bluetooth"
	}
	return fmt.Sprintf("Radio(%d)", int(r))
}

// ReceiverMode selects how many commodity receivers decode the uplink.
type ReceiverMode int

const (
	// DualReceiver is the paper's deployment: receiver 1 captures the
	// clean excitation stream, receiver 2 the backscattered stream, and
	// the decoder window-compares the two. The zero value, so existing
	// configs keep their behaviour.
	DualReceiver ReceiverMode = iota
	// SingleReceiver decodes from the backscattered capture alone
	// (Double-decker): the PHY extracts a per-unit flip feature —
	// pilot-correlation phase (WiFi), complemented-codebook correlation
	// (ZigBee), filtered in-band power (Bluetooth) — and the decoder
	// compares each window against its predecessor
	// (decoder.DecodeDifferentialWindows). No reference stream, no
	// backhaul; the cost is a smaller effective window (features per PHY
	// unit instead of bits per PHY unit) and transition-error propagation.
	SingleReceiver
)

// String names the receiver mode.
func (m ReceiverMode) String() string {
	switch m {
	case DualReceiver:
		return "dual"
	case SingleReceiver:
		return "single"
	}
	return fmt.Sprintf("ReceiverMode(%d)", int(m))
}

// Config describes one backscatter link end to end.
type Config struct {
	Radio Radio
	Link  channel.Link

	// PayloadSize is the excitation packet payload in bytes.
	PayloadSize int
	// WiFiRateMbps selects the 802.11 rate (6/9/12/18; codeword translation
	// by 180° phase needs BPSK or QPSK subcarriers).
	WiFiRateMbps int
	// Redundancy is the PHY units per tag bit: OFDM symbols (WiFi, paper
	// uses 4), OQPSK symbols (ZigBee), or FSK bits (Bluetooth).
	Redundancy int
	// InterPacketGap is the idle time between excitation packets, seconds.
	InterPacketGap float64
	// Quaternary enables the eq. 5 scheme on WiFi: the tag steps its phase
	// in 90° increments, carrying 2 bits per window instead of 1. Requires
	// a QPSK rate (12/18 Mbps) and a monitor-mode decoder with access to
	// raw demapped bits (rotations are invisible after Viterbi decoding).
	Quaternary bool
	// PilotPhaseTracking enables the receiver behaviour FreeRider must not
	// have (ablation; see §3.2.1 on pilot tones).
	PilotPhaseTracking bool
	// SoftDecision upgrades the WiFi receiver to LLR-based Viterbi
	// decoding (~2 dB coding gain), showing what a better-than-commodity
	// decoder would buy the backscatter link. Off by default to keep the
	// calibrated budgets comparable.
	SoftDecision bool
	// DetectionThreshold overrides the receiver's packet-detection
	// threshold; zero selects the per-radio calibrated default, which
	// mimics commodity-chip sensitivity (see EXPERIMENTS.md §calibration).
	DetectionThreshold float64
	// Faults attaches a fault-injection profile: each packet slot runs
	// under faults.Profile.At(Seed, slot). Nil disables fault injection
	// and leaves every code path bit-identical to a fault-free build.
	Faults *faults.Profile
	// Coding enables the Reed-Solomon coded tag uplink: each packet's
	// chunk is RS-encoded per the config (shortened to the packet's
	// capacity), the decoder emits per-bit int16 soft decisions
	// (PacketResult.SoftTag), and Run/RunParallel report post-correction
	// payload statistics alongside the raw channel BER. Nil keeps the
	// uncoded path bit-identical to earlier builds. The coded session
	// draws the same random tag stream as the uncoded one and transmits
	// the encoded image of its prefix, so at equal seeds both see the
	// identical channel realisation — the property the chaos soak's
	// coded-residual invariant leans on.
	Coding *fec.Config
	// Seed drives every stochastic element of the session.
	Seed int64
	// Waveforms attaches a content-addressed cache of clean backscattered
	// excitation waveforms. Synthesising a packet (TX chain + codeword
	// translation + channel shift) is deterministic in its content — radio,
	// PHY config, payload, scrambler seed, tag bits — so identical packets
	// replay one cached waveform instead of re-synthesising it. Cached
	// entries are immutable; the channel applies fading and noise into a
	// separate capture buffer (Link.ApplyTo never writes its source), which
	// is what makes sharing across sessions and goroutines safe. Nil
	// disables caching and leaves every result bit-identical either way.
	Waveforms *waveform.Cache
	// ReceiverMode selects dual-receiver (window-compare against the
	// clean reference stream; the default) or single-receiver decode
	// (self-referenced differential decision on PHY flip features). The
	// tag's transmission is identical in both modes — it always keys the
	// absolute flip state — so cached waveforms are shared across modes
	// and the mode does not participate in waveform cache keys.
	ReceiverMode ReceiverMode
	// ContentSeed, when non-zero, decouples packet content (payload bytes,
	// tag bits, WiFi scrambler seed) from the channel realisation (fading,
	// noise) in Run/RunParallel: content draws from streams derived from
	// ContentSeed while the channel keeps drawing from streams derived from
	// Seed. Sweeps that vary Seed per point can then share one ContentSeed —
	// and therefore one set of cached waveforms — while every point still
	// sees independent channel noise. Zero keeps the legacy single-stream
	// draw order, bit-identical to builds without this knob. RunPacket
	// always uses the session's sequential stream for both.
	ContentSeed int64
}

// Calibrated per-radio receiver detection thresholds: normalised preamble
// correlation below which a commodity chip misses the packet.
const (
	wifiDetectionThreshold = 0.72 // periodicity metric; fails below ~4 dB instantaneous SNR
	zbDetectionThreshold   = 0.85 // fails below ~4.3 dB
	btDetectionThreshold   = 0.81 // fails below ~3 dB
)

// Single-receiver (differential) decision constants.
const (
	// singleThreshold slices the window-to-window disagreement fraction.
	// All three flip features are symmetric binary estimates (a flipped
	// unit looks like the complement of an unflipped one), so the midpoint
	// is the maximum-likelihood threshold for every radio — unlike the
	// dual ZigBee path, whose mismatch fraction saturates at the
	// codebook's confusion floor rather than 1.
	singleThreshold = 0.5
	// cpeGain is the EWMA gain of the single-receiver WiFi feature
	// extractor's common-phase-error tracker (see decodeWiFiSingle).
	cpeGain = 0.25
	// btSinglePowerRatio is the filtered-power ratio below which a
	// Bluetooth bit counts as flipped. The tag's square-wave toggle puts
	// (2/π)² ≈ 0.41 of a flipped bit's power in the surviving sideband
	// inside the ±500 kHz channel filter; 0.7 sits midway between that
	// and the unflipped ratio of 1 on a linear scale.
	btSinglePowerRatio = 0.7
)

func (c Config) detectionThreshold(def float64) float64 {
	if c.DetectionThreshold > 0 {
		return c.DetectionThreshold
	}
	return def
}

// DefaultConfig returns the calibrated defaults for a radio at the given
// tag-to-receiver distance (TX-to-tag 1 m, LOS, as in §4.1).
func DefaultConfig(r Radio, tagToRx float64) Config {
	cfg := Config{Radio: r, Redundancy: 4, InterPacketGap: 100e-6, Seed: 1}
	switch r {
	case WiFi:
		cfg.PayloadSize = 1500
		cfg.WiFiRateMbps = 6
		cfg.Link = channel.Link{
			Deployment: channel.LOS,
			TxPowerDBm: 11,
			SystemGain: channel.DefaultSystemGainDB,
			TagLossDB:  channel.DefaultTagLossDB,
			TxToTag:    1,
			TagToRx:    tagToRx,
			NoiseFloor: channel.NoiseFloorFor(20e6, 6),
			FadingK:    4, // Rician, strong LOS component
			Seed:       1,
		}
	case ZigBee:
		cfg.PayloadSize = 100
		cfg.Redundancy = 4
		cfg.InterPacketGap = 192e-6 // 802.15.4 turnaround
		cfg.Link = channel.Link{
			Deployment: channel.LOS,
			TxPowerDBm: 5,
			// 4 dB below the WiFi rig: the CC2650's PCB antenna path (the
			// RSSI anchor is Fig 12c's -97 dBm at 22 m).
			SystemGain: channel.DefaultSystemGainDB - 4,
			TagLossDB:  channel.DefaultTagLossDB,
			TxToTag:    1,
			TagToRx:    tagToRx,
			NoiseFloor: channel.NoiseFloorFor(2e6, 10),
			FadingK:    4,
			Seed:       1,
		}
	case Bluetooth:
		cfg.PayloadSize = 255
		cfg.Redundancy = 16
		cfg.InterPacketGap = 150e-6 // T_IFS
		cfg.Link = channel.Link{
			Deployment: channel.LOS,
			TxPowerDBm: 0,
			// 7 dB below the WiFi rig (anchor: Fig 13c's -100 dBm at 12 m).
			SystemGain: channel.DefaultSystemGainDB - 7,
			TagLossDB:  channel.DefaultTagLossDB,
			TxToTag:    1,
			TagToRx:    tagToRx,
			NoiseFloor: channel.NoiseFloorFor(1e6, 12),
			FadingK:    4,
			Seed:       1,
		}
	}
	return cfg
}

// PacketResult reports one excitation packet's backscatter outcome.
type PacketResult struct {
	Detected   bool    // adjacent-channel receiver found the packet
	Decoded    bool    // tag windows were extracted
	TagBits    int     // tag bits embedded by the tag
	BitErrors  int     // decoded tag bits differing from the sent bits
	RSSI       float64 // backscatter RSSI at the receiver, dBm
	AirTime    float64 // excitation packet duration, seconds
	Samples    int     // complex-baseband samples in the receiver capture
	DecodedTag []byte  // the decoded tag bits (nil when not decoded)
	// SoftTag carries the decoder's per-bit int16 soft decisions aligned
	// with DecodedTag (positive → 0, negative → 1, |s| the margin; see
	// decoder.SoftScale). Populated when Config.Coding is set, and always
	// in single-receiver mode (a new path with no allocation pins to
	// preserve) — the uncoded dual fast path stays allocation-identical
	// to earlier builds.
	SoftTag []int16
	// DroppedElements counts stream elements the decoder could not
	// compare because the two sides disagreed on length (reference vs
	// capture in the window compare, sent vs decoded tag bits in the BER
	// accounting). Zero on aligned packets; nonzero values surface
	// mismatches that were previously truncated away silently.
	DroppedElements int
	// Coded-uplink outcome (Config.Coding only). DataBits is the payload
	// bits the chunk carried after FEC overhead; DecodedData the
	// RS-corrected payload; DataBitErrors its errors against the sent
	// payload; CorrectedSymbols the symbol corrections RS applied; RSFailed
	// reports that at least one codeword exceeded the code's correction
	// radius (DecodedData then passes through the raw hard decisions).
	DataBits         int
	DecodedData      []byte
	DataBitErrors    int
	CorrectedSymbols int
	RSFailed         bool
	// Fault records the impairment this packet's slot ran under (zero
	// when no profile is attached or the slot was clean).
	Fault faults.Packet
}

// Session runs excitation packets through one link configuration.
type Session struct {
	cfg Config
	rng *rand.Rand
	// slot is the sequential RunPacket slot counter: the packet-time
	// index the fault profile is addressed by. Run/RunParallel instead
	// use the packet index as the slot.
	slot int

	wifiTX *wifi.Transmitter
	zbTX   *zigbee.Transmitter
	btTX   *bluetooth.Transmitter

	// layout is the coded-chunk geometry for the current scheme, non-nil
	// iff Config.Coding is set. Recomputed by SetQuaternary (capacity
	// changes with the scheme); read-only during runs, so RunParallel
	// workers share it safely.
	layout *fec.Layout
}

func validate(cfg Config) error {
	switch cfg.Radio {
	case WiFi:
		r, ok := wifi.Rates[cfg.WiFiRateMbps]
		if !ok {
			return fmt.Errorf("core: unknown wifi rate %d Mbps", cfg.WiFiRateMbps)
		}
		if r.Modulation != wifi.BPSK && r.Modulation != wifi.QPSK {
			return fmt.Errorf("core: 180° codeword translation needs BPSK/QPSK subcarriers; %d Mbps uses %v", cfg.WiFiRateMbps, r.Modulation)
		}
		if cfg.Quaternary && r.Modulation != wifi.QPSK {
			return fmt.Errorf("core: quaternary (eq. 5) translation needs QPSK; %d Mbps uses %v", cfg.WiFiRateMbps, r.Modulation)
		}
	case ZigBee, Bluetooth:
		if cfg.Quaternary {
			return fmt.Errorf("core: quaternary translation is only implemented for WiFi")
		}
	default:
		return fmt.Errorf("core: unknown radio %v", cfg.Radio)
	}
	switch cfg.ReceiverMode {
	case DualReceiver:
	case SingleReceiver:
		if cfg.PilotPhaseTracking {
			// Pilot tracking would rotate the tag's phase steps away before
			// the single receiver's flip feature ever sees them — the same
			// reason FreeRider's dual decoder needs tracking off (§3.2.1),
			// but fatal rather than merely degrading here.
			return fmt.Errorf("core: single-receiver mode is incompatible with pilot phase tracking")
		}
	default:
		return fmt.Errorf("core: unknown receiver mode %v", cfg.ReceiverMode)
	}
	if cfg.PayloadSize <= 0 {
		return fmt.Errorf("core: payload size %d must be positive", cfg.PayloadSize)
	}
	if cfg.Redundancy <= 0 {
		return fmt.Errorf("core: redundancy %d must be positive", cfg.Redundancy)
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if cfg.Coding != nil {
		if err := cfg.Coding.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}

// NewSession validates the configuration and prepares a session.
func NewSession(cfg Config) (*Session, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	s := &Session{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		wifiTX: wifi.NewTransmitter(),
		zbTX:   zigbee.NewTransmitter(),
		btTX:   bluetooth.NewTransmitter(),
	}
	if cfg.Coding != nil {
		lay, err := fec.LayoutFor(s.Capacity(), *cfg.Coding)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		s.layout = &lay
	}
	return s, nil
}

// Config returns the session's configuration.
func (s *Session) Config() Config { return s.cfg }

// SetQuaternary switches the WiFi translation scheme between quaternary
// (eq. 5, 2 bits/window) and binary (eq. 4) mid-session — the graceful-
// degradation lever freerider.Send pulls when quaternary demapping starts
// taking bit errors. It re-validates the config; the slot counter and RNG
// streams are untouched, so fault timelines stay aligned across the switch.
func (s *Session) SetQuaternary(q bool) error {
	cfg := s.cfg
	cfg.Quaternary = q
	if err := validate(cfg); err != nil {
		return err
	}
	oldCfg, oldLayout := s.cfg, s.layout
	s.cfg = cfg
	if cfg.Coding != nil {
		// Capacity changes with the scheme, so the coded layout must be
		// re-planned; soft values accumulated under the old scheme no
		// longer align (callers reset their combiners — see fec.Combiner).
		lay, err := fec.LayoutFor(s.Capacity(), *cfg.Coding)
		if err != nil {
			s.cfg, s.layout = oldCfg, oldLayout
			return fmt.Errorf("core: %w", err)
		}
		s.layout = &lay
	}
	return nil
}

// Layout returns the coded-chunk layout and true when coding is enabled.
func (s *Session) Layout() (fec.Layout, bool) {
	if s.layout == nil {
		return fec.Layout{}, false
	}
	return *s.layout, true
}

// DataCapacity returns how many payload bits one packet carries after FEC
// overhead; with coding disabled it equals Capacity.
func (s *Session) DataCapacity() int {
	if s.layout != nil {
		return s.layout.DataBits()
	}
	return s.Capacity()
}

// Capacity returns how many tag bits one excitation packet carries.
func (s *Session) Capacity() int {
	return s.translator().Capacity(s.PacketDuration())
}

// PacketDuration returns the excitation packet airtime in seconds.
func (s *Session) PacketDuration() float64 {
	switch s.cfg.Radio {
	case WiFi:
		return wifi.PacketDuration(s.cfg.PayloadSize+4, wifi.Rates[s.cfg.WiFiRateMbps])
	case ZigBee:
		return zigbee.FrameDuration(s.cfg.PayloadSize)
	case Bluetooth:
		return bluetooth.FrameDuration(s.cfg.PayloadSize)
	}
	return 0
}

func (s *Session) translator() tag.Translator {
	switch s.cfg.Radio {
	case WiFi:
		// Modulation starts after preamble + SIGNAL + the first DATA
		// symbol: that symbol carries the SERVICE field, from which the
		// receiver recovers the scrambler seed. Flipping it would corrupt
		// descrambling of the whole packet (§3.2.1's scrambler discussion),
		// so the tag leaves it untouched.
		tr := &tag.PhaseTranslator{
			DataStart:     float64(wifi.PreambleLen)/wifi.SampleRate + 2*wifi.SymbolTime,
			SymbolPeriod:  wifi.SymbolTime,
			SymbolsPerBit: s.cfg.Redundancy,
			DeltaTheta:    math.Pi,
			BitsPerStep:   1,
			Latency:       tag.EnvelopeLatency,
		}
		if s.cfg.Quaternary {
			tr.DeltaTheta = math.Pi / 2
			tr.BitsPerStep = 2
		}
		return tr
	case ZigBee:
		hdrSymbols := float64(zigbee.PreambleSymbols + 2 + 2) // preamble + SFD + length
		symPeriod := 1.0 / zigbee.SymbolRate
		return &tag.PhaseTranslator{
			DataStart:     hdrSymbols * symPeriod,
			SymbolPeriod:  symPeriod,
			SymbolsPerBit: s.cfg.Redundancy,
			DeltaTheta:    math.Pi,
			BitsPerStep:   1,
			// The envelope latency (0.35 µs) is negligible against the
			// 16 µs OQPSK symbol but is modelled anyway.
			Latency: tag.EnvelopeLatency,
		}
	case Bluetooth:
		return &tag.FreqTranslator{
			DataStart:     40.0 / bluetooth.BitRate, // preamble + access address
			BitPeriod:     1.0 / bluetooth.BitRate,
			BitsPerTagBit: s.cfg.Redundancy,
			ToggleHz:      bluetooth.CodewordDelta,
			Latency:       tag.EnvelopeLatency,
		}
	}
	return nil
}

// RunPacket transmits one excitation packet, backscatters tagBits onto it
// and decodes them at the adjacent-channel receiver. Randomness (payload,
// fading, noise) is drawn from the session's sequential RNG, so repeated
// calls advance one shared stream; Run and RunParallel instead derive an
// independent stream per packet. Each call occupies the next packet slot
// of the session's fault timeline (see AdvanceSlots).
func (s *Session) RunPacket(tagBits []byte) (PacketResult, error) {
	slot := s.slot
	s.slot++
	return s.runPacket(tagBits, s.rng, s.rng, s.wifiTX, slot)
}

// Slot returns the next packet slot RunPacket will occupy.
func (s *Session) Slot() int { return s.slot }

// AdvanceSlots lets packet-time pass without transmitting: a sender backing
// off for n slots skips that stretch of the fault timeline, which is how
// exponential backoff actually escapes a burst fade. Non-positive n is a
// no-op.
func (s *Session) AdvanceSlots(n int) {
	if n > 0 {
		s.slot += n
	}
}

// runPacket is RunPacket with explicit randomness sources: content drives
// the packet's payload draws, chanRng its fading and noise draws, and wtx
// supplies the WiFi scrambler state (the one per-packet mutable piece of
// transmitter state). Callers without a content/channel split pass the same
// generator twice, which reproduces the legacy single-stream draw order
// exactly. slot addresses the fault profile; a slot whose excitation is out
// or whose tag reservoir is dry short-circuits to a lost packet before any
// PHY work — and before any rng draw, which is harmless because every
// packet runs on streams other packets never observe.
func (s *Session) runPacket(tagBits []byte, content, chanRng *rand.Rand, wtx *wifi.Transmitter, slot int) (PacketResult, error) {
	pf := s.cfg.Faults.At(s.cfg.Seed, slot)
	if pf.Outage || pf.SkipReflection {
		// Nothing reaches the receiver: no excitation to ride on (outage)
		// or no charge to reflect with (brownout). Slot time still passes.
		return PacketResult{AirTime: s.PacketDuration(), Fault: pf}, nil
	}
	switch s.cfg.Radio {
	case WiFi:
		return s.runWiFi(tagBits, content, chanRng, wtx, pf)
	case ZigBee:
		return s.runZigBee(tagBits, content, chanRng, pf)
	case Bluetooth:
		return s.runBluetooth(tagBits, content, chanRng, pf)
	}
	return PacketResult{}, fmt.Errorf("core: unknown radio %v", s.cfg.Radio)
}

func randomPayload(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	rng.Read(out)
	return out
}

// wifiPSDU builds a genuine 802.11 data MPDU whose total PSDU size equals
// PayloadSize+4 (matching the raw-payload sizing the calibration uses).
// The frame body is the productive traffic the excitation carries.
func (s *Session) wifiPSDU(rng *rand.Rand) []byte {
	bodyLen := s.cfg.PayloadSize - 24
	if bodyLen < 0 {
		bodyLen = 0
	}
	f := &wifi.DataFrame{
		FrameControl: wifi.FrameControlData,
		DurationID:   44,
		Addr1:        [6]byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x01},
		Addr2:        [6]byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x02},
		Addr3:        [6]byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x03},
		SeqCtrl:      uint16(rng.Intn(1<<12) << 4),
		Body:         randomPayload(rng, bodyLen),
	}
	return f.Marshal()
}

// zigbeeMPDU builds a genuine 802.15.4 data MPDU (MHR + body) of
// PayloadSize total bytes, carrying productive traffic.
func (s *Session) zigbeeMPDU(rng *rand.Rand) []byte {
	bodyLen := s.cfg.PayloadSize - 9
	if bodyLen < 0 {
		bodyLen = 0
	}
	f := &zigbee.DataFrame{
		Seq:     byte(rng.Intn(256)),
		DstPAN:  0x1234,
		DstAddr: 0x0001,
		SrcAddr: 0x0002,
		Payload: randomPayload(rng, bodyLen),
	}
	return f.Marshal()
}

// capturePool recycles the receiver-side capture buffers (hundreds of KB
// per packet). Decoded frames copy everything they keep — payload bytes,
// bit slices — so a capture can be recycled as soon as its packet's decode
// finishes; RunParallel workers share the Session, hence a shared pool
// rather than Session fields. The GC-stable FreeList (see signal.FreeList)
// keeps steady-state allocation counts deterministic; Cap bounds the
// pinned capture memory to one buffer per plausible worker.
var capturePool = signal.FreeList[*signal.Signal]{New: func() *signal.Signal { return signal.New(0, 0) }, Cap: 32}

// packetRNGPool recycles the per-packet RNGs RunParallel's derived streams
// use (the default source carries a ~5 KB state table).
var packetRNGPool = signal.FreeList[*rand.Rand]{New: func() *rand.Rand { return rand.New(rand.NewSource(0)) }}

// link instantiates the configured link for one packet, seeding it from the
// packet's RNG stream and attaching the slot's channel-level faults (nil
// impairment for a clean slot, which keeps Apply on its benign path).
func (s *Session) link(rng *rand.Rand, pf faults.Packet) channel.Link {
	l := s.cfg.Link
	l.Seed = rng.Int63()
	l.Impairment = pf.Impairment()
	return l
}

// wifiEntry returns the clean backscattered waveform plus decode references
// for one WiFi packet's content, either replayed from the waveform cache or
// synthesised (and, with a cache attached, stored for the next identical
// packet). A cache hit must still advance wtx's scrambler rotation so the
// transmitter's seed sequence is identical to the uncached path.
func (s *Session) wifiEntry(psdu, tagBits []byte, rate wifi.Rate, wtx *wifi.Transmitter) (*waveform.Entry, error) {
	scramblerSeed := wtx.ScramblerSeed
	c := s.cfg.Waveforms
	if c == nil {
		return s.synthesizeWiFi(psdu, tagBits, rate, wtx, scramblerSeed)
	}
	key := waveform.NewKey().
		Byte(byte(WiFi)).
		Uint64(uint64(s.cfg.WiFiRateMbps)).
		Uint64(uint64(s.cfg.Redundancy)).
		Bool(s.cfg.Quaternary).
		Byte(scramblerSeed).
		Bytes(psdu).
		Bytes(tagBits).
		Sum()
	e, synthesized, err := c.GetOrSynthesize(key, func() (*waveform.Entry, error) {
		return s.synthesizeWiFi(psdu, tagBits, rate, wtx, scramblerSeed)
	})
	if err != nil {
		return nil, err
	}
	if !synthesized {
		// Served from cache or a concurrent leader's synthesis: Transmit
		// never ran here, so replay its scrambler-seed rotation to keep the
		// transmitter's seed sequence identical to the uncached path.
		wtx.AdvanceScramblerSeed()
	}
	return e, nil
}

// synthesizeWiFi runs the full WiFi TX chain for one packet's content and
// packages the result as a cache entry. scramblerSeed is the seed wtx held
// before Transmit advanced it — the CodedRef rebuild must use the same one.
func (s *Session) synthesizeWiFi(psdu, tagBits []byte, rate wifi.Rate, wtx *wifi.Transmitter, scramblerSeed byte) (*waveform.Entry, error) {
	exc, err := wtx.Transmit(psdu, rate)
	if err != nil {
		return nil, err
	}
	backscattered, used, err := s.translator().Translate(exc, tagBits)
	if err != nil {
		return nil, err
	}
	sh := tag.ChannelShifter{OffsetHz: 20e6, Mode: tag.ShiftEquivalentBaseband}
	if _, err := sh.Shift(backscattered); err != nil {
		return nil, err
	}
	// Reference stream: descrambled SERVICE + PSDU + tail + pad, which
	// is what receiver 1 reports over the backhaul.
	nSym := wifi.NumDataSymbols(len(psdu), rate)
	ref := make([]byte, nSym*rate.NDBPS)
	copy(ref[wifi.ServiceBits:], bits.FromBytes(psdu))
	e := &waveform.Entry{
		Wave:      backscattered,
		MeanPower: backscattered.MeanPower(),
		Used:      used,
		Airtime:   exc.Duration(),
		Ref:       ref,
	}
	if s.cfg.Quaternary {
		// eq. 5 needs the interleaved coded stream; rebuild it once at
		// synthesis time so cache hits skip it along with the TX chain.
		e.CodedRef, err = wifi.CodedBits(psdu, rate, scramblerSeed)
		if err != nil {
			return nil, err
		}
	}
	return e, nil
}

func (s *Session) runWiFi(tagBits []byte, content, chanRng *rand.Rand, wtx *wifi.Transmitter, pf faults.Packet) (PacketResult, error) {
	rate := wifi.Rates[s.cfg.WiFiRateMbps]
	psdu := s.wifiPSDU(content)
	entry, err := s.wifiEntry(psdu, tagBits, rate, wtx)
	if err != nil {
		return PacketResult{}, err
	}
	used := entry.Used
	res := PacketResult{AirTime: entry.Airtime, TagBits: used, Fault: pf}

	cap := capturePool.Get()
	defer capturePool.Put(cap)
	if err := s.link(chanRng, pf).ApplyToWithPower(cap, entry.Wave, 400, false, entry.MeanPower); err != nil {
		return PacketResult{}, err
	}
	res.Samples = len(cap.Samples)

	rx := wifi.NewReceiver()
	rx.DetectionThreshold = s.cfg.detectionThreshold(wifiDetectionThreshold)
	rx.PilotPhaseTracking = s.cfg.PilotPhaseTracking
	rx.SoftDecision = s.cfg.SoftDecision
	rx.CollectPilotPhases = s.cfg.ReceiverMode == SingleReceiver
	// The session reports the link budget's backscatter RSSI (below), never
	// the capture measurement, so skip that full-packet power pass.
	rx.SkipRSSI = true
	pkt, err := rx.Receive(cap)
	if err != nil {
		return res, nil // undetected: lost packet, not a session error
	}
	res.Detected = true
	res.RSSI = s.cfg.Link.BackscatterRSSI()
	if len(pkt.PSDU) != len(psdu) {
		return res, nil // header decoded to a wrong length; treat as loss
	}
	if s.cfg.ReceiverMode == SingleReceiver {
		return s.decodeWiFiSingle(res, pkt, tagBits, used)
	}
	// Tag windows start one OFDM symbol into the data (the SERVICE symbol
	// is reflected unmodified; see translator()).
	if s.cfg.Quaternary {
		// eq. 5: rotation hypotheses on the raw demapped coded bits.
		if len(pkt.DemappedBits) <= rate.NCBPS {
			return res, nil
		}
		qws, err := decoder.DecodeQuaternaryWindows(
			entry.CodedRef[rate.NCBPS:], pkt.DemappedBits[rate.NCBPS:],
			s.cfg.Redundancy*rate.NCBPS)
		if err != nil {
			return PacketResult{}, err
		}
		decoded := decoder.QuaternaryBits(qws)
		if len(decoded) > used {
			decoded = decoded[:used]
		}
		res.Decoded = true
		res.DecodedTag = decoded
		var berDropped int
		res.BitErrors, _, berDropped = decoder.BER(tagBits[:used], decoded)
		res.DroppedElements += berDropped
		if s.cfg.Coding != nil {
			soft := decoder.QuaternarySoft(qws)
			if len(soft) > used {
				soft = soft[:used]
			}
			res.SoftTag = soft
		}
		return res, nil
	}
	window := s.cfg.Redundancy * rate.NDBPS
	if len(pkt.RawBits) <= rate.NDBPS {
		return res, nil
	}
	ws, dropped, err := decoder.DecodeWindows(entry.Ref[rate.NDBPS:], pkt.RawBits[rate.NDBPS:], window, 0.5)
	if err != nil {
		return PacketResult{}, err
	}
	res.DroppedElements += dropped
	if len(ws) > used {
		ws = ws[:used]
	}
	res.Decoded = true
	res.DecodedTag = decoder.Bits(ws)
	var berDropped int
	res.BitErrors, _, berDropped = decoder.BER(tagBits[:used], res.DecodedTag)
	res.DroppedElements += berDropped
	if s.cfg.Coding != nil {
		res.SoftTag = decoder.Soft(ws)
	}
	return res, nil
}

// decodeWiFiSingle is the Double-decker decision for WiFi: the receiver's
// per-symbol pilot-correlation phases are an absolute estimate of the
// tag's applied rotation. PilotPhases[0] is the SERVICE symbol — reflected
// untranslated (see translator()), it anchors the all-zero state the
// differential decoder assumes before window 0, and the tag windows start
// at index 1. The effective window is Redundancy features instead of the
// dual path's Redundancy·NDBPS bits — the heart of the single-receiver
// sensitivity cost the BER-vs-SNR experiment measures.
//
// The raw phases carry a slowly accumulating common phase error on top of
// the tag rotation (the tag's phase jumps bias the receiver's CP-based
// residual-CFO estimate, leaving a drift of ~0.01 rad/symbol that crosses
// a quantisation boundary mid-packet). Quantising the absolute phase
// directly would hand that drift to the differential decoder as a slow
// parade of false transitions, so the feature extractor runs a
// decision-directed tracker first: the residual after removing the nearest
// rotation hypothesis is rotation-independent, and an EWMA of it estimates
// the drift, which is subtracted before quantising. Drift per symbol is
// orders of magnitude below the π/4 (binary: π/2) decision radius, so the
// tracker cannot lose lock to the tag's own steps.
func (s *Session) decodeWiFiSingle(res PacketResult, pkt *wifi.RxPacket, tagBits []byte, used int) (PacketResult, error) {
	if len(pkt.PilotPhases) <= 1 {
		return res, nil
	}
	feat := make([]byte, len(pkt.PilotPhases)-1)
	if s.cfg.Quaternary {
		var cpe float64
		for i, p := range pkt.PilotPhases {
			// Quantise to quarter turns: the eq. 5 rotation index.
			q := wrapPhase(p - cpe)
			n := math.Round(q / (math.Pi / 2))
			cpe = wrapPhase(cpe + cpeGain*(q-n*(math.Pi/2)))
			if i > 0 {
				feat[i-1] = byte(int(n) & 3)
			}
		}
		qws, err := decoder.DecodeDifferentialQuaternaryWindows(feat, s.cfg.Redundancy)
		if err != nil {
			return PacketResult{}, err
		}
		decoded := decoder.QuaternaryBits(qws)
		soft := decoder.QuaternarySoft(qws)
		if len(decoded) > used {
			decoded = decoded[:used]
			soft = soft[:used]
		}
		res.Decoded = true
		res.DecodedTag = decoded
		res.SoftTag = soft
		var berDropped int
		res.BitErrors, _, berDropped = decoder.BER(tagBits[:used], decoded)
		res.DroppedElements += berDropped
		return res, nil
	}
	var cpe float64
	for i, p := range pkt.PilotPhases {
		q := wrapPhase(p - cpe)
		n := math.Round(q / math.Pi)
		cpe = wrapPhase(cpe + cpeGain*(q-n*math.Pi))
		if i > 0 && math.Abs(q) > math.Pi/2 {
			feat[i-1] = 1
		}
	}
	ws, err := decoder.DecodeDifferentialWindows(feat, s.cfg.Redundancy, singleThreshold)
	if err != nil {
		return PacketResult{}, err
	}
	if len(ws) > used {
		ws = ws[:used]
	}
	res.Decoded = true
	res.DecodedTag = decoder.Bits(ws)
	res.SoftTag = decoder.Soft(ws)
	var berDropped int
	res.BitErrors, _, berDropped = decoder.BER(tagBits[:used], res.DecodedTag)
	res.DroppedElements += berDropped
	return res, nil
}

// zigbeeEntry returns the clean backscattered waveform plus the symbol
// reference for one ZigBee packet's content, cached when a cache is
// attached. The ZigBee transmitter is stateless, so a hit skips the whole
// synthesis path with nothing to replay.
func (s *Session) zigbeeEntry(payload, tagBits []byte) (*waveform.Entry, error) {
	c := s.cfg.Waveforms
	if c == nil {
		return s.synthesizeZigBee(payload, tagBits)
	}
	key := waveform.NewKey().
		Byte(byte(ZigBee)).
		Uint64(uint64(s.cfg.Redundancy)).
		Bytes(payload).
		Bytes(tagBits).
		Sum()
	e, _, err := c.GetOrSynthesize(key, func() (*waveform.Entry, error) {
		return s.synthesizeZigBee(payload, tagBits)
	})
	return e, err
}

// synthesizeZigBee runs the full ZigBee TX chain for one packet's content
// and packages the result as a cache entry.
func (s *Session) synthesizeZigBee(payload, tagBits []byte) (*waveform.Entry, error) {
	exc, err := s.zbTX.Transmit(payload)
	if err != nil {
		return nil, err
	}
	backscattered, used, err := s.translator().Translate(exc, tagBits)
	if err != nil {
		return nil, err
	}
	sh := tag.ChannelShifter{OffsetHz: 16e6, Mode: tag.ShiftEquivalentBaseband}
	if _, err := sh.Shift(backscattered); err != nil {
		return nil, err
	}
	fcs := bits.CRC16CCITT(payload)
	body := append(append([]byte(nil), payload...), byte(fcs), byte(fcs>>8))
	return &waveform.Entry{
		Wave:      backscattered,
		MeanPower: backscattered.MeanPower(),
		Used:      used,
		Airtime:   exc.Duration(),
		Ref:       zigbee.SymbolsFromBytes(body),
	}, nil
}

func (s *Session) runZigBee(tagBits []byte, content, chanRng *rand.Rand, pf faults.Packet) (PacketResult, error) {
	payload := s.zigbeeMPDU(content)
	entry, err := s.zigbeeEntry(payload, tagBits)
	if err != nil {
		return PacketResult{}, err
	}
	used := entry.Used
	res := PacketResult{AirTime: entry.Airtime, TagBits: used, Fault: pf}

	cap := capturePool.Get()
	defer capturePool.Put(cap)
	if err := s.link(chanRng, pf).ApplyToWithPower(cap, entry.Wave, 400, false, entry.MeanPower); err != nil {
		return PacketResult{}, err
	}
	res.Samples = len(cap.Samples)

	zrx := zigbee.NewReceiver()
	zrx.DetectionThreshold = s.cfg.detectionThreshold(zbDetectionThreshold)
	zrx.CollectFlips = s.cfg.ReceiverMode == SingleReceiver
	frame, err := zrx.Receive(cap)
	if err != nil {
		return res, nil
	}
	res.Detected = true
	res.RSSI = s.cfg.Link.BackscatterRSSI()
	if len(frame.Symbols) != len(entry.Ref) {
		return res, nil
	}
	if s.cfg.ReceiverMode == SingleReceiver {
		// Double-decker: each payload symbol's flip feature asks whether
		// the chip window correlated better with the complemented codebook
		// than the true one (see zigbee.BestWorstSymbol) — a clean binary
		// estimate of the tag's absolute flip state, one per symbol.
		ws, err := decoder.DecodeDifferentialWindows(frame.Flips, s.cfg.Redundancy, singleThreshold)
		if err != nil {
			return PacketResult{}, err
		}
		if len(ws) > used {
			ws = ws[:used]
		}
		res.Decoded = true
		res.DecodedTag = decoder.Bits(ws)
		res.SoftTag = decoder.Soft(ws)
		var berDropped int
		res.BitErrors, _, berDropped = decoder.BER(tagBits[:used], res.DecodedTag)
		res.DroppedElements += berDropped
		return res, nil
	}
	ws, dropped, err := decoder.DecodeWindows(entry.Ref, frame.Symbols, s.cfg.Redundancy, 0.3)
	if err != nil {
		return PacketResult{}, err
	}
	res.DroppedElements += dropped
	if len(ws) > used {
		ws = ws[:used]
	}
	res.Decoded = true
	res.DecodedTag = decoder.Bits(ws)
	var berDropped int
	res.BitErrors, _, berDropped = decoder.BER(tagBits[:used], res.DecodedTag)
	res.DroppedElements += berDropped
	if s.cfg.Coding != nil {
		res.SoftTag = decoder.Soft(ws)
	}
	return res, nil
}

// bluetoothEntry returns the clean backscattered waveform plus the frame
// bit reference for one Bluetooth packet's content, cached when a cache is
// attached. The whitening seed is static per session but shapes the
// waveform, so it participates in the key.
func (s *Session) bluetoothEntry(payload, tagBits []byte) (*waveform.Entry, error) {
	c := s.cfg.Waveforms
	if c == nil {
		return s.synthesizeBluetooth(payload, tagBits)
	}
	key := waveform.NewKey().
		Byte(byte(Bluetooth)).
		Uint64(uint64(s.cfg.Redundancy)).
		Byte(s.btTX.WhitenSeed).
		Bytes(payload).
		Bytes(tagBits).
		Sum()
	e, _, err := c.GetOrSynthesize(key, func() (*waveform.Entry, error) {
		return s.synthesizeBluetooth(payload, tagBits)
	})
	return e, err
}

// synthesizeBluetooth runs the full Bluetooth TX chain for one packet's
// content and packages the result as a cache entry.
func (s *Session) synthesizeBluetooth(payload, tagBits []byte) (*waveform.Entry, error) {
	exc, err := s.btTX.Transmit(payload)
	if err != nil {
		return nil, err
	}
	ref, err := s.btTX.FrameBits(payload)
	if err != nil {
		return nil, err
	}
	// The Bluetooth tag's codeword toggle already runs through the real
	// square-wave mixer inside the translator; the channel hop to
	// 2.48 GHz is folded into TagLossDB like the others, so no shifter
	// here.
	backscattered, used, err := s.translator().Translate(exc, tagBits)
	if err != nil {
		return nil, err
	}
	return &waveform.Entry{
		Wave:      backscattered,
		MeanPower: backscattered.MeanPower(),
		Used:      used,
		Airtime:   exc.Duration(),
		Ref:       ref,
	}, nil
}

func (s *Session) runBluetooth(tagBits []byte, content, chanRng *rand.Rand, pf faults.Packet) (PacketResult, error) {
	payload := randomPayload(content, s.cfg.PayloadSize)
	entry, err := s.bluetoothEntry(payload, tagBits)
	if err != nil {
		return PacketResult{}, err
	}
	used := entry.Used
	ref := entry.Ref
	res := PacketResult{AirTime: entry.Airtime, TagBits: used, Fault: pf}

	cap := capturePool.Get()
	defer capturePool.Put(cap)
	if err := s.link(chanRng, pf).ApplyToWithPower(cap, entry.Wave, 400, false, entry.MeanPower); err != nil {
		return PacketResult{}, err
	}
	res.Samples = len(cap.Samples)

	rx := bluetooth.NewReceiver()
	rx.DetectionThreshold = s.cfg.detectionThreshold(btDetectionThreshold)
	rx.CollectPower = s.cfg.ReceiverMode == SingleReceiver
	// One channel-filter + discriminator pass answers both the sync
	// detection and the raw bit slicing.
	demod := rx.Demod(cap)
	start, q := demod.Detect()
	if start < 0 || q < rx.DetectionThreshold {
		return res, nil
	}
	res.Detected = true
	res.RSSI = s.cfg.Link.BackscatterRSSI()

	const hdr = 40 // tag modulation starts after preamble + access address
	if s.cfg.ReceiverMode == SingleReceiver {
		// Double-decker: a flipped bit's FSK tone is toggled out to a
		// sideband the ±500 kHz channel filter mostly rejects, so its
		// filtered in-band power drops to ≈(2/π)² of an unflipped bit's.
		// The 40 untranslated header bits self-calibrate the reference
		// power — no second receiver, and no absolute power knowledge.
		powers := demod.BitPowers(start, len(ref))
		if len(powers) < len(ref) {
			return res, nil
		}
		refPower := 0.0
		for _, p := range powers[:hdr] {
			refPower += p
		}
		refPower /= hdr
		if refPower <= 0 {
			return res, nil
		}
		feat := make([]byte, len(ref)-hdr)
		for i, p := range powers[hdr:] {
			if p < btSinglePowerRatio*refPower {
				feat[i] = 1
			}
		}
		ws, err := decoder.DecodeDifferentialWindows(feat, s.cfg.Redundancy, singleThreshold)
		if err != nil {
			return PacketResult{}, err
		}
		if len(ws) > used {
			ws = ws[:used]
		}
		res.Decoded = true
		res.DecodedTag = decoder.Bits(ws)
		res.SoftTag = decoder.Soft(ws)
		var berDropped int
		res.BitErrors, _, berDropped = decoder.BER(tagBits[:used], res.DecodedTag)
		res.DroppedElements += berDropped
		return res, nil
	}

	raw := demod.RawBitsAt(start, len(ref))
	if len(raw) < len(ref) {
		return res, nil
	}
	ws, dropped, err := decoder.DecodeWindows(ref[hdr:], raw[hdr:], s.cfg.Redundancy, 0.5)
	if err != nil {
		return PacketResult{}, err
	}
	res.DroppedElements += dropped
	if len(ws) > used {
		ws = ws[:used]
	}
	res.Decoded = true
	res.DecodedTag = decoder.Bits(ws)
	var berDropped int
	res.BitErrors, _, berDropped = decoder.BER(tagBits[:used], res.DecodedTag)
	res.DroppedElements += berDropped
	if s.cfg.Coding != nil {
		res.SoftTag = decoder.Soft(ws)
	}
	return res, nil
}

// SessionResult aggregates a multi-packet run.
type SessionResult struct {
	Packets        int
	PacketsLost    int
	TagBitsSent    int
	TagBitsDecoded int
	BitErrors      int
	ElapsedSeconds float64
	// SamplesProcessed counts the complex-baseband samples pushed through
	// the receiver chain, for the harness's points/sec metrics.
	SamplesProcessed int64
	// DroppedElements aggregates PacketResult.DroppedElements: stream
	// elements the decoder could not compare because the two sides
	// disagreed on length. Nonzero values flag alignment trouble that was
	// previously truncated away silently.
	DroppedElements int
	// Coded-uplink aggregates (zero unless Config.Coding is set): payload
	// bits recovered after RS correction, residual errors among them,
	// total symbol corrections, and packets where a codeword exceeded the
	// correction radius.
	DataBitsDecoded  int
	DataBitErrors    int
	CorrectedSymbols int
	RSFailures       int
}

// ThroughputBps is the tag goodput: decoded tag bits over elapsed time.
func (r SessionResult) ThroughputBps() float64 {
	if r.ElapsedSeconds <= 0 {
		return 0
	}
	return float64(r.TagBitsDecoded) / r.ElapsedSeconds
}

// BER is the tag bit error rate over decoded bits.
func (r SessionResult) BER() float64 {
	if r.TagBitsDecoded == 0 {
		return 1
	}
	return float64(r.BitErrors) / float64(r.TagBitsDecoded)
}

// CodedBER is the post-correction payload bit error rate (1 when nothing
// was decoded; meaningful only with Config.Coding set).
func (r SessionResult) CodedBER() float64 {
	if r.DataBitsDecoded == 0 {
		return 1
	}
	return float64(r.DataBitErrors) / float64(r.DataBitsDecoded)
}

// LossRate is the fraction of excitation packets whose backscatter copy was
// not decoded.
func (r SessionResult) LossRate() float64 {
	if r.Packets == 0 {
		return 0
	}
	return float64(r.PacketsLost) / float64(r.Packets)
}

// runPacketAt runs packet idx of a multi-packet session on its own derived
// RNG stream. The stream — tag data, payload, WiFi scrambler seed, fading
// and noise — depends only on (Config.Seed, idx), never on which packets
// ran before or on which worker this one lands, which is what makes Run,
// RunBatch and RunParallel bit-identical.
func (s *Session) runPacketAt(idx int) (PacketResult, error) {
	rng := packetRNGPool.Get()
	defer packetRNGPool.Put(rng)
	var crng *rand.Rand
	if s.cfg.ContentSeed != 0 {
		crng = packetRNGPool.Get()
		defer packetRNGPool.Put(crng)
	}
	return s.runPacketAtWith(idx, rng, crng)
}

// runPacketAtWith is runPacketAt with caller-supplied scratch generators
// (crng may be nil when no ContentSeed is set). Both are fully re-seeded
// here — Seed re-initialises the whole source state, so a recycled
// generator draws exactly what a fresh rand.New(rand.NewSource(seed))
// would — which is what lets batch loops hoist the pool traffic out of
// their per-packet loop without changing a single draw.
func (s *Session) runPacketAtWith(idx int, rng, crng *rand.Rand) (PacketResult, error) {
	rng.Seed(runner.DeriveSeed(s.cfg.Seed, "core.packet", idx))
	// With a ContentSeed, packet content comes off its own derived stream so
	// sweeps that vary Seed per point still synthesise identical packets;
	// without one, content and channel share the stream in the legacy draw
	// order (content first, then the channel seed), bit for bit.
	content := rng
	if s.cfg.ContentSeed != 0 {
		crng.Seed(runner.DeriveSeed(s.cfg.ContentSeed, "core.content", idx))
		content = crng
	}
	tagBits := make([]byte, s.Capacity())
	for j := range tagBits {
		tagBits[j] = byte(content.Intn(2))
	}
	// With coding on, the drawn prefix is the payload and its RS encoding
	// replaces the transmitted head; drawing the full capacity first keeps
	// the content stream's draw count — and everything after it, including
	// the channel realisation — bit-identical to the uncoded session.
	var dataBits []byte
	if s.layout != nil {
		dataBits = append([]byte(nil), tagBits[:s.layout.DataBits()]...)
		coded, err := s.layout.EncodeBits(dataBits)
		if err != nil {
			return PacketResult{}, err
		}
		copy(tagBits, coded)
	}
	var wtx *wifi.Transmitter
	if s.cfg.Radio == WiFi {
		// Commodity cards rotate the 7-bit scrambler seed per packet; here
		// each packet draws its own nonzero seed from its stream instead of
		// inheriting rotation order from the previous packet.
		wtx = &wifi.Transmitter{ScramblerSeed: byte(1 + content.Intn(127)), FixedSeed: true}
	}
	pr, err := s.runPacket(tagBits, content, rng, wtx, idx)
	if err != nil || s.layout == nil {
		return pr, err
	}
	pr.DataBits = s.layout.DataBits()
	if pr.Decoded && len(pr.DecodedTag) >= s.layout.CodedBits() {
		data, corrected, ok := s.layout.DecodeBits(pr.DecodedTag)
		pr.DecodedData = data
		pr.CorrectedSymbols = corrected
		pr.RSFailed = !ok
		var berDropped int
		pr.DataBitErrors, _, berDropped = decoder.BER(dataBits, data)
		pr.DroppedElements += berDropped
	} else if pr.Decoded {
		// Truncated decode: too few windows to cover the coded region.
		pr.RSFailed = true
	}
	return pr, nil
}

func (r *SessionResult) accumulate(pr PacketResult, gap float64) {
	r.Packets++
	r.TagBitsSent += pr.TagBits
	r.ElapsedSeconds += pr.AirTime + gap
	r.SamplesProcessed += int64(pr.Samples)
	r.DroppedElements += pr.DroppedElements
	if !pr.Decoded {
		r.PacketsLost++
		return
	}
	r.TagBitsDecoded += len(pr.DecodedTag)
	r.BitErrors += pr.BitErrors
	if pr.DecodedData != nil {
		r.DataBitsDecoded += len(pr.DecodedData)
		r.DataBitErrors += pr.DataBitErrors
		r.CorrectedSymbols += pr.CorrectedSymbols
	}
	if pr.RSFailed {
		r.RSFailures++
	}
}

// DefaultBatchSize is the packet count per batch dispatch used by Run,
// RunParallel and the serve layer when the caller does not choose one.
// Large enough to amortise per-dispatch setup (RNG pool checkout, scratch
// warm-up, plan lookups), small enough that RunParallel still load-balances
// across workers on modest packet counts.
const DefaultBatchSize = 8

// runPacketRange runs packets [lo, hi) of the derived-stream timeline into
// prs[0:hi-lo] with one set of pooled scratch generators for the whole
// range. Each packet still re-seeds from (Config.Seed, idx) — see
// runPacketAtWith — so the results are bit-identical to calling
// runPacketAt per index.
func (s *Session) runPacketRange(lo, hi int, prs []PacketResult) error {
	rng := packetRNGPool.Get()
	defer packetRNGPool.Put(rng)
	var crng *rand.Rand
	if s.cfg.ContentSeed != 0 {
		crng = packetRNGPool.Get()
		defer packetRNGPool.Put(crng)
	}
	for i := lo; i < hi; i++ {
		pr, err := s.runPacketAtWith(i, rng, crng)
		if err != nil {
			return err
		}
		prs[i-lo] = pr
	}
	return nil
}

// RunPacketBatch synthesises, impairs and decodes the n packets at indices
// start..start+n-1 of the session's derived-stream timeline and returns
// their per-packet results. It is the batch counterpart of runPacketAt —
// every packet draws from its own (Config.Seed, index) stream, so the
// returned slice is bit-identical, element for element, to running the
// serial per-packet loop over the same indices — while the batch amortises
// RNG pool checkouts and keeps the scratch arenas, FFT plans and capture
// buffers hot across consecutive packets. With a Waveforms cache attached,
// consecutive identical packets (retransmissions, fixed-content sweeps)
// decode against one cached synthesis.
func (s *Session) RunPacketBatch(start, n int) ([]PacketResult, error) {
	if n < 0 {
		return nil, fmt.Errorf("core: negative batch size %d", n)
	}
	prs := make([]PacketResult, n)
	if err := s.runPacketRange(start, start+n, prs); err != nil {
		return nil, err
	}
	return prs, nil
}

// RunBatch is Run with an explicit batch size: packets are processed in
// contiguous ranges of `batch` (<= 0 selects DefaultBatchSize) through
// RunPacketBatch's amortised loop. The aggregate result is bit-identical
// to Run and RunParallel for every batch size.
func (s *Session) RunBatch(n, batch int) (SessionResult, error) {
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	var out SessionResult
	prs := make([]PacketResult, batch)
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		if err := s.runPacketRange(lo, hi, prs[:hi-lo]); err != nil {
			return SessionResult{}, err
		}
		for i := range prs[:hi-lo] {
			out.accumulate(prs[i], s.cfg.InterPacketGap)
		}
	}
	return out, nil
}

// Run executes n excitation packets with fresh random tag data on each and
// aggregates the results. Each packet runs on its own RNG stream derived
// from (Config.Seed, packet index), so the result is exactly what
// RunParallel produces with any worker count.
func (s *Session) Run(n int) (SessionResult, error) {
	return s.RunBatch(n, DefaultBatchSize)
}

// RunParallel is Run spread over a bounded worker pool (all cores when
// workers <= 0), sharding DefaultBatchSize-packet batches across the pool
// rather than single packets so each dispatch amortises its setup.
// Per-packet seed derivation makes the aggregate SessionResult
// bit-identical to the serial Run for every worker count and batch
// sharding; on error it returns a zero result plus the error the serial
// loop would have hit first (batches are contiguous index ranges, so the
// lowest failing batch's first error is the serial loop's first error).
func (s *Session) RunParallel(n, workers int) (SessionResult, error) {
	prs := make([]PacketResult, n)
	if err := runner.MapBatches(n, DefaultBatchSize, workers, func(lo, hi int) error {
		return s.runPacketRange(lo, hi, prs[lo:hi])
	}); err != nil {
		return SessionResult{}, err
	}
	var out SessionResult
	for i := range prs {
		out.accumulate(prs[i], s.cfg.InterPacketGap)
	}
	return out, nil
}

// wrapPhase folds an angle into (-π, π].
func wrapPhase(x float64) float64 {
	return math.Atan2(math.Sin(x), math.Cos(x))
}
