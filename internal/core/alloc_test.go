package core

import "testing"

// TestRunPacketAllocs pins the steady-state heap traffic of the full
// per-packet pipeline for every radio (TX synthesis included — no
// waveform cache configured). The counts cover only the escaping
// results: the random payload, the frame-bit reference, the
// synthesised/translated waveforms and the demodulator output; all
// filter/convolution scratch lives in pooled arenas and every pool on
// the path is a GC-stable signal.FreeList, so the counts are exact
// integers, not budgets. A change in either direction means the fast
// path's allocation behaviour moved: re-measure and update the pin
// alongside the change that caused it.
func TestRunPacketAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are not meaningful under the race detector")
	}
	for _, tc := range []struct {
		radio Radio
		want  float64 // measured by BenchmarkSessionRunPacket
	}{
		{WiFi, 17},
		{ZigBee, 20},
		{Bluetooth, 12},
	} {
		t.Run(tc.radio.String(), func(t *testing.T) {
			cfg := DefaultConfig(tc.radio, 5)
			s, err := NewSession(cfg)
			if err != nil {
				t.Fatal(err)
			}
			tagBits := make([]byte, s.Capacity())
			for i := range tagBits {
				tagBits[i] = byte(i) & 1
			}
			// Warm the arena and session pools so the measurement sees
			// steady state.
			for k := 0; k < 3; k++ {
				if _, err := s.RunPacket(tagBits); err != nil {
					t.Fatal(err)
				}
			}
			got := testing.AllocsPerRun(20, func() {
				if _, err := s.RunPacket(tagBits); err != nil {
					t.Fatal(err)
				}
			})
			if got != tc.want {
				t.Fatalf("%v RunPacket allocates %.1f/op, want exactly %.0f", tc.radio, got, tc.want)
			}
		})
	}
}
