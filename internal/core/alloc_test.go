package core

import "testing"

// TestRunPacketBluetoothAllocs pins the steady-state heap traffic of the
// full Bluetooth packet pipeline (TX synthesis included — no waveform
// cache configured). The budget covers only the escaping results: the
// random payload, the frame-bit reference, the synthesised/translated
// waveforms and the discriminator output; all filter/convolution scratch
// lives in pooled arenas. A regression here means a fast path started
// allocating per packet again.
func TestRunPacketBluetoothAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are not meaningful under the race detector")
	}
	cfg := DefaultConfig(Bluetooth, 5)
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tagBits := make([]byte, s.Capacity())
	for i := range tagBits {
		tagBits[i] = byte(i) & 1
	}
	// Warm the arena and session pools so the measurement sees steady state.
	if _, err := s.RunPacket(tagBits); err != nil {
		t.Fatal(err)
	}
	const budget = 14 // measured by BenchmarkSessionRunPacket/Bluetooth
	got := testing.AllocsPerRun(20, func() {
		if _, err := s.RunPacket(tagBits); err != nil {
			t.Fatal(err)
		}
	})
	if got > budget {
		t.Fatalf("Bluetooth RunPacket allocates %.1f/op, budget %d", got, budget)
	}
}
