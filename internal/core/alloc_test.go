package core

import (
	"testing"

	"repro/internal/simd"
	"repro/internal/waveform"
)

// forEachDispatchMode runs fn once per available dispatch path (pure Go
// always; the asm kernels when this build+CPU has them), restoring the
// ambient mode afterwards. The alloc pins below must hold bit-exactly in
// both modes: the SIMD kernels are //go:noescape leaf calls over
// caller-owned memory, so a divergence means a kernel started escaping
// its arguments.
func forEachDispatchMode(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	prev := simd.Enabled()
	defer simd.SetEnabled(prev)
	modes := []bool{false}
	if simd.HWMode() != "" {
		modes = append(modes, true)
	}
	for _, on := range modes {
		simd.SetEnabled(on)
		t.Run("dispatch="+simd.Mode(), fn)
	}
}

// TestRunPacketAllocs pins the steady-state heap traffic of the full
// per-packet pipeline for every radio (TX synthesis included — no
// waveform cache configured). The counts cover only the escaping
// results: the random payload, the frame-bit reference, the
// synthesised/translated waveforms and the demodulator output; all
// filter/convolution scratch lives in pooled arenas and every pool on
// the path is a GC-stable signal.FreeList, so the counts are exact
// integers, not budgets. A change in either direction means the fast
// path's allocation behaviour moved: re-measure and update the pin
// alongside the change that caused it.
func TestRunPacketAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are not meaningful under the race detector")
	}
	for _, tc := range []struct {
		radio Radio
		want  float64 // measured by BenchmarkSessionRunPacket
	}{
		{WiFi, 17},
		{ZigBee, 20},
		{Bluetooth, 12},
	} {
		t.Run(tc.radio.String(), func(t *testing.T) {
			forEachDispatchMode(t, func(t *testing.T) {
				cfg := DefaultConfig(tc.radio, 5)
				s, err := NewSession(cfg)
				if err != nil {
					t.Fatal(err)
				}
				tagBits := make([]byte, s.Capacity())
				for i := range tagBits {
					tagBits[i] = byte(i) & 1
				}
				// Warm the arena and session pools so the measurement sees
				// steady state.
				for k := 0; k < 3; k++ {
					if _, err := s.RunPacket(tagBits); err != nil {
						t.Fatal(err)
					}
				}
				got := testing.AllocsPerRun(20, func() {
					if _, err := s.RunPacket(tagBits); err != nil {
						t.Fatal(err)
					}
				})
				if got != tc.want {
					t.Fatalf("%v RunPacket allocates %.1f/op, want exactly %.0f", tc.radio, got, tc.want)
				}
			})
		})
	}
}

// TestRunPacketBatchAllocs pins the batch pipeline the same way: one
// RunPacketBatch call of DefaultBatchSize packets over a warm waveform
// cache, exact equality per call so any increase fails. The benchgate
// alloc budget alone allows +2 per benchmark, which is how the ZigBee
// alloc drift in the BENCH_DSP trajectory stayed invisible — only an
// exact in-repo pin holds the line. Per-call counts: 89 = 8 packets ×
// 11 escaping results + one batch-level result slice; Bluetooth's
// decode path escapes fewer intermediates.
func TestRunPacketBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are not meaningful under the race detector")
	}
	for _, tc := range []struct {
		radio Radio
		want  float64 // allocations per RunPacketBatch(0, DefaultBatchSize) call
	}{
		{WiFi, 89},
		{ZigBee, 89},
		{Bluetooth, 54},
	} {
		t.Run(tc.radio.String(), func(t *testing.T) {
			forEachDispatchMode(t, func(t *testing.T) {
				cfg := DefaultConfig(tc.radio, 5)
				cfg.Waveforms = waveform.New(0)
				cfg.ContentSeed = 7 // fixed content: replayed indices hit the cache
				s, err := NewSession(cfg)
				if err != nil {
					t.Fatal(err)
				}
				// Warm pools and populate the waveform cache for the batch.
				if _, err := s.RunPacketBatch(0, DefaultBatchSize); err != nil {
					t.Fatal(err)
				}
				got := testing.AllocsPerRun(10, func() {
					if _, err := s.RunPacketBatch(0, DefaultBatchSize); err != nil {
						t.Fatal(err)
					}
				})
				if got != tc.want {
					t.Fatalf("%v RunPacketBatch allocates %.1f/call, want exactly %.0f", tc.radio, got, tc.want)
				}
			})
		})
	}
}
