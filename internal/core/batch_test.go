package core

import (
	"reflect"
	"testing"

	"repro/internal/fec"
)

// batchIdentityCases covers every decode mode the batch path must preserve:
// all three radios, dual and single receiver, and the quaternary WiFi
// scheme.
func batchIdentityCases(t *testing.T) map[string]Config {
	t.Helper()
	wifi := DefaultConfig(WiFi, 10)
	wifi.Seed = 99
	wifi.PayloadSize = 400

	quat := DefaultConfig(WiFi, 8)
	quat.Seed = 41
	quat.PayloadSize = 400
	quat.WiFiRateMbps = 12
	quat.Quaternary = true

	wifiSingle := DefaultConfig(WiFi, 8)
	wifiSingle.Seed = 17
	wifiSingle.PayloadSize = 400
	wifiSingle.ReceiverMode = SingleReceiver

	zb := DefaultConfig(ZigBee, 8)
	zb.Seed = 7

	zbSingle := DefaultConfig(ZigBee, 6)
	zbSingle.Seed = 23
	zbSingle.ReceiverMode = SingleReceiver

	bt := DefaultConfig(Bluetooth, 6)
	bt.Seed = 13

	btSingle := DefaultConfig(Bluetooth, 5)
	btSingle.Seed = 29
	btSingle.ReceiverMode = SingleReceiver

	return map[string]Config{
		"wifi":      wifi,
		"wifi-quat": quat,
		"wifi-sing": wifiSingle,
		"zigbee":    zb,
		"zb-single": zbSingle,
		"bluetooth": bt,
		"bt-single": btSingle,
	}
}

// TestRunPacketBatchMatchesSerialLoop is the batch path's bit-identity
// contract: RunPacketBatch(start, n) must return, element for element, the
// exact PacketResults the serial per-packet loop produces over the same
// indices — every field including decoded bits and soft decisions.
func TestRunPacketBatchMatchesSerialLoop(t *testing.T) {
	const packets = 3
	for name, cfg := range batchIdentityCases(t) {
		t.Run(name, func(t *testing.T) {
			s, err := NewSession(cfg)
			if err != nil {
				t.Fatal(err)
			}
			serial := make([]PacketResult, packets)
			for i := range serial {
				pr, err := s.runPacketAt(i)
				if err != nil {
					t.Fatal(err)
				}
				serial[i] = pr
			}
			batch, err := s.RunPacketBatch(0, packets)
			if err != nil {
				t.Fatal(err)
			}
			for i := range serial {
				if !reflect.DeepEqual(serial[i], batch[i]) {
					t.Errorf("packet %d: batch %+v != serial %+v", i, batch[i], serial[i])
				}
			}
			// A batch starting mid-timeline must reproduce the same packets.
			tail, err := s.RunPacketBatch(1, packets-1)
			if err != nil {
				t.Fatal(err)
			}
			for i := range tail {
				if !reflect.DeepEqual(serial[i+1], tail[i]) {
					t.Errorf("offset batch packet %d: %+v != serial %+v", i+1, tail[i], serial[i+1])
				}
			}
		})
	}
}

// TestRunBatchSizeInvariance pins that the aggregate result does not depend
// on the batch size — including a batch larger than the packet count — and
// matches RunParallel's batch-sharded pool.
func TestRunBatchSizeInvariance(t *testing.T) {
	cfg := DefaultConfig(ZigBee, 8)
	cfg.Seed = 31
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const packets = 5
	ref, err := s.RunBatch(packets, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{2, 3, packets, packets + 7, 0 /* default */} {
		got, err := s.RunBatch(packets, batch)
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if got != ref {
			t.Errorf("batch=%d: %+v != reference %+v", batch, got, ref)
		}
	}
	par, err := s.RunParallel(packets, 3)
	if err != nil {
		t.Fatal(err)
	}
	if par != ref {
		t.Errorf("RunParallel %+v != RunBatch reference %+v", par, ref)
	}
}

// TestRunPacketBatchCoded pins batch identity through the RS-coded path,
// whose per-packet decode carries extra derived fields.
func TestRunPacketBatchCoded(t *testing.T) {
	cfg := DefaultConfig(ZigBee, 6)
	cfg.Seed = 3
	cfg.Coding = &fec.Config{N: 15, K: 9}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const packets = 3
	serial := make([]PacketResult, packets)
	for i := range serial {
		pr, err := s.runPacketAt(i)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = pr
	}
	batch, err := s.RunPacketBatch(0, packets)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], batch[i]) {
			t.Errorf("coded packet %d: batch != serial", i)
		}
	}
}

func TestRunPacketBatchRejectsNegative(t *testing.T) {
	cfg := DefaultConfig(ZigBee, 6)
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunPacketBatch(0, -1); err == nil {
		t.Fatal("negative batch size must error")
	}
}
