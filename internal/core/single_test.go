package core

import (
	"runtime"
	"testing"

	"repro/internal/waveform"
)

// singleConfigs covers every single-receiver decode path: the three
// radios' binary features plus the WiFi quaternary rotation features.
func singleConfigs(dist float64) []Config {
	wifi := DefaultConfig(WiFi, dist)
	wifi.PayloadSize = 400
	zb := DefaultConfig(ZigBee, dist)
	bt := DefaultConfig(Bluetooth, dist)
	quat := DefaultConfig(WiFi, dist)
	quat.PayloadSize = 400
	quat.Quaternary = true
	quat.WiFiRateMbps = 12
	out := []Config{wifi, zb, bt, quat}
	for i := range out {
		out[i].ReceiverMode = SingleReceiver
		out[i].Seed = 21
	}
	return out
}

// TestSingleReceiverEndToEnd: at close range every radio must decode the
// tag stream from the backscattered capture alone, error-free, with soft
// decisions populated (single mode always emits them — there is no
// reference stream to re-derive confidence from later).
func TestSingleReceiverEndToEnd(t *testing.T) {
	for _, cfg := range singleConfigs(1) {
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Radio, err)
		}
		res, err := s.Run(8)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Radio, err)
		}
		if res.PacketsLost != 0 {
			t.Errorf("%v quat=%v: lost %d/%d packets at 1 m", cfg.Radio, cfg.Quaternary, res.PacketsLost, res.Packets)
		}
		if res.TagBitsDecoded == 0 || res.BitErrors != 0 {
			t.Errorf("%v quat=%v: %d/%d bit errors at 1 m", cfg.Radio, cfg.Quaternary, res.BitErrors, res.TagBitsDecoded)
		}
		if res.DroppedElements != 0 {
			t.Errorf("%v quat=%v: %d dropped elements on clean decode", cfg.Radio, cfg.Quaternary, res.DroppedElements)
		}

		bits := make([]byte, s.Capacity())
		for i := range bits {
			bits[i] = byte(i>>1) & 1
		}
		pr, err := s.RunPacket(bits)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Radio, err)
		}
		if !pr.Decoded {
			t.Fatalf("%v quat=%v: packet not decoded", cfg.Radio, cfg.Quaternary)
		}
		if len(pr.SoftTag) != len(pr.DecodedTag) {
			t.Errorf("%v quat=%v: soft len %d != decoded len %d (single mode must always emit soft)",
				cfg.Radio, cfg.Quaternary, len(pr.SoftTag), len(pr.DecodedTag))
		}
		for i, s16 := range pr.SoftTag {
			got := byte(0)
			if s16 < 0 {
				got = 1
			}
			if got != pr.DecodedTag[i] {
				t.Fatalf("%v quat=%v: soft[%d]=%d slices to %d, hard %d",
					cfg.Radio, cfg.Quaternary, i, s16, got, pr.DecodedTag[i])
			}
		}
	}
}

// TestSingleRunParallelMatchesRun extends the determinism contract to the
// single-receiver mode: serial and parallel runs must agree bit for bit
// at every worker count, for every decode path.
func TestSingleRunParallelMatchesRun(t *testing.T) {
	const packets = 3
	for _, cfg := range singleConfigs(8) { // mid-range: mixes decoded and lost
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := s.Run(packets)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			par, err := s.RunParallel(packets, workers)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", cfg.Radio, workers, err)
			}
			if par != serial {
				t.Errorf("%v quat=%v workers=%d: parallel %+v != serial %+v",
					cfg.Radio, cfg.Quaternary, workers, par, serial)
			}
		}
	}
}

// TestSingleReceiverUnmodulatedAllZero: a packet whose tag bits are all
// zero leaves the excitation untouched, so the differential decode must
// report all-zero tag bits — the self-consistency anchor of the decision
// rule (no reference stream means "no transitions" is the only evidence
// of an idle tag).
func TestSingleReceiverUnmodulatedAllZero(t *testing.T) {
	for _, cfg := range singleConfigs(1) {
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := s.RunPacket(make([]byte, s.Capacity()))
		if err != nil {
			t.Fatal(err)
		}
		if !pr.Decoded {
			t.Fatalf("%v quat=%v: unmodulated packet not decoded", cfg.Radio, cfg.Quaternary)
		}
		for i, b := range pr.DecodedTag {
			if b != 0 {
				t.Fatalf("%v quat=%v: unmodulated stream decoded bit %d at %d",
					cfg.Radio, cfg.Quaternary, b, i)
			}
		}
	}
}

// TestSingleReceiverValidation: the mode gate in validate().
func TestSingleReceiverValidation(t *testing.T) {
	cfg := DefaultConfig(WiFi, 2)
	cfg.ReceiverMode = SingleReceiver
	cfg.PilotPhaseTracking = true
	if _, err := NewSession(cfg); err == nil {
		t.Error("single receiver with pilot phase tracking accepted (tracking erases the feature)")
	}
	cfg = DefaultConfig(WiFi, 2)
	cfg.ReceiverMode = ReceiverMode(7)
	if _, err := NewSession(cfg); err == nil {
		t.Error("unknown receiver mode accepted")
	}
}

// TestSingleModeSharesWaveformCache: the tag's transmission is identical
// in both modes, so a single-mode session must replay waveforms a
// dual-mode session synthesised (mode never enters waveform keys).
func TestSingleModeSharesWaveformCache(t *testing.T) {
	waves := waveform.New(0)
	mk := func(mode ReceiverMode) SessionResult {
		cfg := DefaultConfig(ZigBee, 2)
		cfg.Seed = 33
		cfg.ContentSeed = 44
		cfg.Waveforms = waves
		cfg.ReceiverMode = mode
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(4)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	mk(DualReceiver)
	after := waves.Stats()
	if after.Misses == 0 {
		t.Fatal("dual run synthesised nothing")
	}
	mk(SingleReceiver)
	final := waves.Stats()
	if final.Misses != after.Misses {
		t.Errorf("single-mode run re-synthesised %d waveforms; modes must share the cache",
			final.Misses-after.Misses)
	}
	if final.Hits <= after.Hits {
		t.Error("single-mode run never hit the shared cache")
	}
}
