package core

import (
	"strings"
	"testing"
)

func TestRadioString(t *testing.T) {
	for _, r := range []Radio{WiFi, ZigBee, Bluetooth} {
		if strings.HasPrefix(r.String(), "Radio(") {
			t.Errorf("radio %d unnamed", r)
		}
	}
	if !strings.HasPrefix(Radio(9).String(), "Radio(") {
		t.Error("invalid radio should print numerically")
	}
}

func TestNewSessionValidation(t *testing.T) {
	cfg := DefaultConfig(WiFi, 5)
	cfg.WiFiRateMbps = 7
	if _, err := NewSession(cfg); err == nil {
		t.Error("unknown wifi rate accepted")
	}
	cfg = DefaultConfig(WiFi, 5)
	cfg.WiFiRateMbps = 24 // 16-QAM: 180° flips are not codebook automorphisms
	if _, err := NewSession(cfg); err == nil {
		t.Error("16-QAM rate accepted for 180° translation")
	}
	cfg = DefaultConfig(WiFi, 5)
	cfg.PayloadSize = 0
	if _, err := NewSession(cfg); err == nil {
		t.Error("zero payload accepted")
	}
	cfg = DefaultConfig(ZigBee, 5)
	cfg.Redundancy = 0
	if _, err := NewSession(cfg); err == nil {
		t.Error("zero redundancy accepted")
	}
	if _, err := NewSession(Config{Radio: Radio(42), PayloadSize: 1, Redundancy: 1}); err == nil {
		t.Error("unknown radio accepted")
	}
}

func TestCapacityMatchesPaperNumbers(t *testing.T) {
	// WiFi: 1504-byte PSDU at 6 Mbps = 503 data symbols; skipping the
	// SERVICE symbol leaves 125 four-symbol windows (~60 kbps over ~2 ms).
	s, err := NewSession(DefaultConfig(WiFi, 5))
	if err != nil {
		t.Fatal(err)
	}
	if c := s.Capacity(); c != 125 {
		t.Fatalf("wifi capacity %d, want 125", c)
	}
	// ZigBee: 100-byte payload -> 204 body symbols / 4 = 51, minus header
	// alignment -> 50.
	s, err = NewSession(DefaultConfig(ZigBee, 5))
	if err != nil {
		t.Fatal(err)
	}
	if c := s.Capacity(); c < 49 || c > 51 {
		t.Fatalf("zigbee capacity %d, want about 50", c)
	}
	// Bluetooth: 255-byte payload -> (2112-40)/16 = 129.
	s, err = NewSession(DefaultConfig(Bluetooth, 5))
	if err != nil {
		t.Fatal(err)
	}
	if c := s.Capacity(); c != 129 {
		t.Fatalf("bluetooth capacity %d, want 129", c)
	}
}

func TestEndToEndCloseRange(t *testing.T) {
	// At 5 m all three radios must deliver their paper-reported plateau
	// throughput with zero tag BER.
	cases := []struct {
		radio   Radio
		minKbps float64
		maxBER  float64
	}{
		{WiFi, 50, 0.01},
		{ZigBee, 11, 0.01},
		{Bluetooth, 45, 0.02},
	}
	for _, c := range cases {
		cfg := DefaultConfig(c.radio, 5)
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(4)
		if err != nil {
			t.Fatal(err)
		}
		if thr := res.ThroughputBps() / 1e3; thr < c.minKbps {
			t.Errorf("%v: throughput %.1f kbps, want >= %.0f", c.radio, thr, c.minKbps)
		}
		if ber := res.BER(); ber > c.maxBER {
			t.Errorf("%v: BER %.4f, want <= %.3f", c.radio, ber, c.maxBER)
		}
	}
}

func TestEndToEndBeyondRange(t *testing.T) {
	// Far beyond the paper's maximum ranges nothing should decode.
	cases := []struct {
		radio Radio
		dist  float64
	}{{WiFi, 60}, {ZigBee, 35}, {Bluetooth, 25}}
	for _, c := range cases {
		s, err := NewSession(DefaultConfig(c.radio, c.dist))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(3)
		if err != nil {
			t.Fatal(err)
		}
		if res.TagBitsDecoded != 0 {
			t.Errorf("%v at %gm: decoded %d bits, want 0", c.radio, c.dist, res.TagBitsDecoded)
		}
		if res.LossRate() != 1 {
			t.Errorf("%v at %gm: loss %.2f, want 1", c.radio, c.dist, res.LossRate())
		}
	}
}

func TestExactTagDataRecovery(t *testing.T) {
	// A specific message must round-trip bit-exactly at close range on
	// every radio (fading disabled to make this deterministic).
	msg := []byte{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 1, 0, 1, 0, 1, 1}
	for _, r := range []Radio{WiFi, ZigBee, Bluetooth} {
		cfg := DefaultConfig(r, 3)
		cfg.Link.FadingK = 0
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := s.RunPacket(msg)
		if err != nil {
			t.Fatal(err)
		}
		if !pr.Decoded {
			t.Fatalf("%v: packet not decoded", r)
		}
		if pr.TagBits != len(msg) {
			t.Fatalf("%v: embedded %d bits, want %d", r, pr.TagBits, len(msg))
		}
		for i := range msg {
			if pr.DecodedTag[i] != msg[i] {
				t.Fatalf("%v: bit %d = %d, want %d", r, i, pr.DecodedTag[i], msg[i])
			}
		}
		if pr.BitErrors != 0 {
			t.Fatalf("%v: %d bit errors", r, pr.BitErrors)
		}
	}
}

func TestPilotTrackingAblationBreaksWiFiTag(t *testing.T) {
	// §3.2.1: receivers that correct phase with pilot tones erase the tag's
	// phase modulation. With tracking enabled, tag decoding must collapse
	// to chance while the link itself still decodes.
	cfg := DefaultConfig(WiFi, 3)
	cfg.Link.FadingK = 0
	cfg.PilotPhaseTracking = true
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.TagBitsDecoded == 0 {
		t.Fatal("packets should still decode with pilot tracking")
	}
	if ber := res.BER(); ber < 0.2 {
		t.Fatalf("BER %.3f with pilot tracking; expected tag data destroyed", ber)
	}
}

func TestQPSKRateAlsoCarriesTagData(t *testing.T) {
	// 180° phase flips complement both QPSK bits, so 12 Mbps should work
	// too (more tag bits per second thanks to shorter packets... same
	// symbol count per window, so same tag rate per packet duration).
	cfg := DefaultConfig(WiFi, 3)
	cfg.Link.FadingK = 0
	cfg.WiFiRateMbps = 12
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.TagBitsDecoded == 0 || res.BER() > 0.01 {
		t.Fatalf("QPSK: decoded=%d BER=%.4f", res.TagBitsDecoded, res.BER())
	}
}

func TestRedundancyAblation(t *testing.T) {
	// Fewer OFDM symbols per tag bit means more tag bits per packet.
	cfgLow := DefaultConfig(WiFi, 3)
	cfgLow.Redundancy = 2
	sLow, err := NewSession(cfgLow)
	if err != nil {
		t.Fatal(err)
	}
	cfgHigh := DefaultConfig(WiFi, 3)
	cfgHigh.Redundancy = 8
	sHigh, err := NewSession(cfgHigh)
	if err != nil {
		t.Fatal(err)
	}
	if sLow.Capacity() <= sHigh.Capacity() {
		t.Fatalf("capacity low=%d high=%d; lower redundancy must carry more bits",
			sLow.Capacity(), sHigh.Capacity())
	}
}

func TestSessionResultArithmetic(t *testing.T) {
	r := SessionResult{
		Packets: 10, PacketsLost: 4,
		TagBitsSent: 1000, TagBitsDecoded: 600, BitErrors: 6,
		ElapsedSeconds: 0.01,
	}
	if got := r.ThroughputBps(); got != 60000 {
		t.Fatalf("throughput %g", got)
	}
	if got := r.BER(); got != 0.01 {
		t.Fatalf("BER %g", got)
	}
	if got := r.LossRate(); got != 0.4 {
		t.Fatalf("loss %g", got)
	}
	empty := SessionResult{}
	if empty.ThroughputBps() != 0 || empty.BER() != 1 || empty.LossRate() != 0 {
		t.Fatal("zero-value result arithmetic wrong")
	}
}

func TestDeterministicSessions(t *testing.T) {
	for _, r := range []Radio{ZigBee} {
		a, err := NewSession(DefaultConfig(r, 15))
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewSession(DefaultConfig(r, 15))
		if err != nil {
			t.Fatal(err)
		}
		ra, err := a.Run(3)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Run(3)
		if err != nil {
			t.Fatal(err)
		}
		if ra != rb {
			t.Fatalf("%v: same seed, different results: %+v vs %+v", r, ra, rb)
		}
	}
}
