package core

import (
	"math"
	"testing"

	"repro/internal/bits"
	"repro/internal/decoder"
	"repro/internal/faults"
	"repro/internal/tag"
	"repro/internal/wifi"
)

// TestMisalignedFlipsDestroyDecoding is the §2.2.2/§3.2.1 alignment
// requirement: the interleaver never crosses an OFDM symbol boundary, so a
// tag bit that spans *whole* symbols flips clean blocks. If the tag's
// modulation grid is offset by half a symbol, every flip straddles two
// symbols' FFT windows, the mid-symbol phase discontinuity smears across
// all subcarriers, and tag decoding collapses — the reason the envelope
// detector's 0.35 µs latency matters only because it stays inside the
// 0.8 µs cyclic prefix.
func TestMisalignedFlipsDestroyDecoding(t *testing.T) {
	run := func(extraOffset float64) float64 {
		cfg := DefaultConfig(WiFi, 5)
		cfg.Link.FadingK = 0
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rate := wifi.Rates[cfg.WiFiRateMbps]
		psdu := s.wifiPSDU(s.rng)
		exc, err := s.wifiTX.Transmit(psdu, rate)
		if err != nil {
			t.Fatal(err)
		}
		nSym := wifi.NumDataSymbols(len(psdu), rate)
		ref := make([]byte, nSym*rate.NDBPS)
		copy(ref[wifi.ServiceBits:], bits.FromBytes(psdu))

		tr := &tag.PhaseTranslator{
			DataStart:     float64(wifi.PreambleLen)/wifi.SampleRate + 2*wifi.SymbolTime + extraOffset,
			SymbolPeriod:  wifi.SymbolTime,
			SymbolsPerBit: cfg.Redundancy,
			DeltaTheta:    math.Pi,
			BitsPerStep:   1,
			Latency:       tag.EnvelopeLatency,
		}
		tagBits := make([]byte, 100)
		for i := range tagBits {
			tagBits[i] = byte(i) & 1
		}
		mod, used, err := tr.Translate(exc, tagBits)
		if err != nil {
			t.Fatal(err)
		}
		sh := tag.ChannelShifter{OffsetHz: 20e6, Mode: tag.ShiftEquivalentBaseband}
		if _, err := sh.Shift(mod); err != nil {
			t.Fatal(err)
		}
		cap, err := s.link(s.rng, faults.Packet{}).Apply(mod, 400, false)
		if err != nil {
			t.Fatal(err)
		}
		pkt, err := wifi.NewReceiver().Receive(cap)
		if err != nil {
			t.Fatalf("offset %g: %v", extraOffset, err)
		}
		ws, _, err := decoder.DecodeWindows(ref[rate.NDBPS:], pkt.RawBits[rate.NDBPS:],
			cfg.Redundancy*rate.NDBPS, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if len(ws) > used {
			ws = ws[:used]
		}
		e, n, _ := decoder.BER(tagBits[:used], decoder.Bits(ws))
		return float64(e) / float64(n)
	}

	aligned := run(0)
	misaligned := run(2e-6) // half an OFDM symbol

	if aligned > 0.01 {
		t.Fatalf("aligned BER %.3f, want ~0", aligned)
	}
	if misaligned < 0.10 {
		t.Fatalf("half-symbol misalignment BER %.3f; expected severe degradation", misaligned)
	}
}
