package core

import (
	"testing"

	"repro/internal/decoder"
	"repro/internal/fec"
)

// TestCodedSoftScaleAgreement pins the cross-package soft-decision
// contract: the decoder's emit scale and the combiner's slicing scale are
// the same number.
func TestCodedSoftScaleAgreement(t *testing.T) {
	if decoder.SoftScale != fec.SoftScale {
		t.Fatalf("decoder.SoftScale %d != fec.SoftScale %d", decoder.SoftScale, fec.SoftScale)
	}
}

// TestCodedRunMatchesRunParallel: with coding enabled the aggregate result
// must stay bit-identical across worker counts.
func TestCodedRunMatchesRunParallel(t *testing.T) {
	for _, radio := range []Radio{WiFi, ZigBee, Bluetooth} {
		cfg := DefaultConfig(radio, 8)
		cfg.Seed = 42
		coding := fec.DefaultConfig()
		cfg.Coding = &coding
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const n = 6
		serial, err := s.Run(n)
		if err != nil {
			t.Fatal(err)
		}
		if serial.DataBitsDecoded == 0 {
			t.Fatalf("%v: clean 8 m link decoded no payload bits", radio)
		}
		for _, workers := range []int{1, 3, 0} {
			par, err := s.RunParallel(n, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par != serial {
				t.Fatalf("%v workers=%d: parallel result diverges\nserial:   %+v\nparallel: %+v",
					radio, workers, serial, par)
			}
		}
	}
}

// TestCodedChannelAlignment: a coded and an uncoded session at the same
// seed must see the identical channel — same detection outcomes, same
// sample counts — because the coded path only rewrites the transmitted
// bit content, never the draw order. This is the foundation of the soak's
// coded-residual invariant.
func TestCodedChannelAlignment(t *testing.T) {
	cfg := DefaultConfig(WiFi, 14)
	cfg.Seed = 7
	un, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coding := fec.DefaultConfig()
	cfg.Coding = &coding
	co, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		pu, err := un.runPacketAt(i)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := co.runPacketAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if pu.Detected != pc.Detected || pu.Samples != pc.Samples || pu.AirTime != pc.AirTime {
			t.Fatalf("packet %d: channel realisation diverges: uncoded %+v coded %+v", i, pu, pc)
		}
	}
}

// TestCodedRecoversChannelErrors: at a distance where the raw channel
// takes occasional bit errors, RS correction must strictly reduce the
// payload error rate relative to the raw stream.
func TestCodedRecoversChannelErrors(t *testing.T) {
	cfg := DefaultConfig(WiFi, 8)
	cfg.Seed = 11
	// 7.5 dB sits just above the detection knee: surviving packets take
	// occasional 1-3 symbol hits, squarely inside a t=3 code's radius.
	cfg.Link.NoiseFloor = cfg.Link.BackscatterRSSI() - 7.5
	cfg.Coding = &fec.Config{N: 15, K: 9}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	if res.BitErrors == 0 {
		t.Fatal("operating point too clean: raw channel took no errors")
	}
	if res.CorrectedSymbols == 0 {
		t.Fatalf("raw errors %d but RS corrected nothing (failures=%d)",
			res.BitErrors, res.RSFailures)
	}
	if res.CodedBER() >= res.BER() {
		t.Fatalf("coded BER %.4g not better than raw BER %.4g (corrected=%d failures=%d)",
			res.CodedBER(), res.BER(), res.CorrectedSymbols, res.RSFailures)
	}
}

// TestSetQuaternaryReplansLayout: toggling the scheme must re-derive the
// coded layout for the new capacity.
func TestSetQuaternaryReplansLayout(t *testing.T) {
	cfg := DefaultConfig(WiFi, 8)
	cfg.WiFiRateMbps = 12
	coding := fec.DefaultConfig()
	cfg.Coding = &coding
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lay1, ok := s.Layout()
	if !ok {
		t.Fatal("no layout with coding enabled")
	}
	if err := s.SetQuaternary(true); err != nil {
		t.Fatal(err)
	}
	lay2, ok := s.Layout()
	if !ok {
		t.Fatal("layout lost after SetQuaternary")
	}
	if lay2.CodedBits() > s.Capacity() {
		t.Fatalf("layout %d coded bits exceeds capacity %d", lay2.CodedBits(), s.Capacity())
	}
	if s.DataCapacity() != lay2.DataBits() {
		t.Fatalf("DataCapacity %d != layout %d", s.DataCapacity(), lay2.DataBits())
	}
	_ = lay1
}
