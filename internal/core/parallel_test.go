package core

import (
	"runtime"
	"testing"
)

// TestRunParallelMatchesRun is the determinism contract of the run engine:
// for every radio, RunParallel must produce a SessionResult bit-identical
// to the serial Run regardless of worker count, because each packet draws
// from its own (seed, index)-derived RNG stream and the aggregation
// happens in index order.
func TestRunParallelMatchesRun(t *testing.T) {
	cases := []struct {
		radio Radio
		dist  float64
	}{
		{WiFi, 10}, // mid-range: mixes decoded and lost packets
		{ZigBee, 8},
		{Bluetooth, 6},
	}
	const packets = 3
	for _, c := range cases {
		cfg := DefaultConfig(c.radio, c.dist)
		cfg.Seed = 99
		if c.radio == WiFi {
			cfg.PayloadSize = 400 // keep the sample count test-sized
		}
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := s.Run(packets)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Packets != packets {
			t.Fatalf("%v: serial run counted %d packets, want %d", c.radio, serial.Packets, packets)
		}
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			par, err := s.RunParallel(packets, workers)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", c.radio, workers, err)
			}
			if par != serial {
				t.Errorf("%v workers=%d: parallel %+v != serial %+v", c.radio, workers, par, serial)
			}
		}
	}
}

// TestRunIsRepeatable pins the other half of the contract: re-running the
// same session (same seed) must reproduce the same aggregate, i.e. Run has
// no hidden cross-call state.
func TestRunIsRepeatable(t *testing.T) {
	cfg := DefaultConfig(ZigBee, 6)
	cfg.Seed = 5
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("repeat run diverged: %+v vs %+v", a, b)
	}
}

// TestRunPacketKeepsSequentialStream guards the legacy semantics: explicit
// RunPacket calls advance one shared session stream, so two identical
// calls generally see different fading/noise draws while a fresh session
// with the same seed reproduces the original sequence.
func TestRunPacketKeepsSequentialStream(t *testing.T) {
	mk := func() *Session {
		cfg := DefaultConfig(ZigBee, 6)
		cfg.Seed = 8
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, s2 := mk(), mk()
	bits := make([]byte, s1.Capacity())
	for i := range bits {
		bits[i] = byte(i) & 1
	}
	for i := 0; i < 3; i++ {
		a, err := s1.RunPacket(bits)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s2.RunPacket(bits)
		if err != nil {
			t.Fatal(err)
		}
		if a.Detected != b.Detected || a.BitErrors != b.BitErrors || a.Samples != b.Samples {
			t.Fatalf("call %d: sessions with equal seeds diverged: %+v vs %+v", i, a, b)
		}
	}
}
