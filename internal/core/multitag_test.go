package core

import (
	"math/rand"
	"testing"
)

func collisionSession(t *testing.T) *Session {
	t.Helper()
	cfg := DefaultConfig(WiFi, 5)
	cfg.Link.FadingK = 0
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randomTagBits(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(2))
	}
	return out
}

func TestCollisionSingleTagIsClean(t *testing.T) {
	s := collisionSession(t)
	data := randomTagBits(s.Capacity(), 1)
	res, err := s.RunCollision([][]byte{data})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("single tag not detected")
	}
	if res.PerTagBER[0] > 0.01 {
		t.Fatalf("single-tag BER %.3f, want ~0", res.PerTagBER[0])
	}
}

func TestCollisionTwoTagsDestroysBoth(t *testing.T) {
	s := collisionSession(t)
	a := randomTagBits(s.Capacity(), 2)
	b := randomTagBits(s.Capacity(), 3)
	res, err := s.RunCollision([][]byte{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// Whatever the receiver makes of the superposition, neither tag's data
	// should come through cleanly: this is the MAC's collision premise.
	for i, ber := range res.PerTagBER {
		if ber < 0.15 {
			t.Fatalf("tag %d decoded through a collision with BER %.3f", i, ber)
		}
	}
}

func TestCollisionValidation(t *testing.T) {
	s := collisionSession(t)
	if _, err := s.RunCollision(nil); err == nil {
		t.Error("empty tag set accepted")
	}
	zb, err := NewSession(DefaultConfig(ZigBee, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zb.RunCollision([][]byte{{1}}); err == nil {
		t.Error("non-WiFi collision accepted")
	}
}
