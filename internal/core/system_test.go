package core

import (
	"bytes"
	"testing"

	"repro/internal/firmware"
	"repro/internal/plm"
	"repro/internal/signal"
	"repro/internal/tag"
)

// TestFullSystemDownlinkToUplink drives the complete FreeRider loop at
// sample level: the coordinator announces a round over PLM (real RF bursts
// at the tag antenna), the tag's envelope detector times the pulses, the
// firmware scans its bit buffer, arms a random slot, and when that slot
// arrives the tag backscatters its queued data over a real WiFi excitation
// packet, which the adjacent-channel receiver decodes.
func TestFullSystemDownlinkToUplink(t *testing.T) {
	scheme := plm.DefaultScheme()
	const slots = 4
	message := []byte{1, 1, 0, 1, 0, 1, 0, 0, 1, 1}

	// --- Downlink: synthesise the announcement as RF bursts. ---
	payload, err := firmware.EncodeAnnouncement(slots)
	if err != nil {
		t.Fatal(err)
	}
	durations := scheme.EncodeMessage(payload)
	const rate = 2e6
	var total float64
	for _, d := range durations {
		total += d + scheme.Gap
	}
	rf := signal.New(rate, int(total*rate)+4000)
	amp := signal.AmplitudeForPowerDBm(-35) // strong: tag near transmitter
	pos := 1000
	for _, d := range durations {
		n := int(d * rate)
		for i := 0; i < n; i++ {
			rf.Samples[pos+i] = complex(amp, 0)
		}
		pos += n + int(scheme.Gap*rate)
	}

	det := tag.NewEnvelopeDetector()
	pulses := det.Detect(rf)
	if len(pulses) != len(durations) {
		t.Fatalf("envelope detector found %d pulses, want %d", len(pulses), len(durations))
	}

	fw, err := firmware.New(scheme, 7)
	if err != nil {
		t.Fatal(err)
	}
	fw.Enqueue(message)
	for _, p := range pulses {
		fw.OnPulse(p)
	}
	if fw.State() != firmware.Armed {
		t.Fatal("firmware did not arm from the RF downlink")
	}

	// --- Uplink: run the round's slots; the armed one backscatters. ---
	cfg := DefaultConfig(WiFi, 5)
	cfg.Link.FadingK = 0
	session, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []byte
	fires := 0
	for idx := 0; idx < slots; idx++ {
		data, ok := fw.OnSlot(idx)
		if !ok {
			continue
		}
		fires++
		pr, err := session.RunPacket(data)
		if err != nil {
			t.Fatal(err)
		}
		if !pr.Decoded {
			t.Fatal("armed slot's backscatter packet not decoded")
		}
		decoded = pr.DecodedTag[:len(data)]
	}
	if fires != 1 {
		t.Fatalf("tag fired %d times, want 1", fires)
	}
	if !bytes.Equal(decoded, message) {
		t.Fatalf("system decoded %v, want %v", decoded, message)
	}
}
