package core

import (
	"testing"

	"repro/internal/tag"
	"repro/internal/wifi"
)

// TestAmplitudeModulationFigure2 reproduces the paper's Figure 2 argument:
// a tag's amplitude modification is frequency agnostic, so on OFDM it
// scales every subcarrier at once — and while a BPSK subcarrier survives
// (the sign is intact), QAM subcarriers land between constellation rings
// and demap to *invalid codewords*, corrupting the packet. This is why the
// WiFi translator only touches phase (§2.2.2, §2.3.1).
func TestAmplitudeModulationFigure2(t *testing.T) {
	run := func(mbps int) (fcsOK bool) {
		tx := wifi.NewTransmitter()
		psdu := wifi.AppendFCS(make([]byte, 400))
		exc, err := tx.Transmit(psdu, wifi.Rates[mbps])
		if err != nil {
			t.Fatal(err)
		}
		at := &tag.AmplitudeTranslator{
			DataStart:     float64(wifi.PreambleLen)/wifi.SampleRate + 2*wifi.SymbolTime,
			SymbolPeriod:  wifi.SymbolTime,
			SymbolsPerBit: 4,
			HighGamma:     1.0,
			LowGamma:      0.55, // between the 16-QAM rings
			Latency:       tag.EnvelopeLatency,
		}
		tagBits := make([]byte, 40)
		for i := range tagBits {
			tagBits[i] = byte(i) & 1
		}
		mod, _, err := at.Translate(exc, tagBits)
		if err != nil {
			t.Fatal(err)
		}
		cap := mod.Clone()
		cap.DelaySamples(200)
		rx := wifi.NewReceiver()
		rx.DetectionThreshold = 0.01
		pkt, err := rx.Receive(cap)
		if err != nil {
			return false
		}
		return pkt.FCSOK
	}

	// BPSK (6 Mbps): amplitude scaling leaves the sign — the only thing the
	// demapper reads — untouched, so the packet still decodes.
	if !run(6) {
		t.Fatal("BPSK packet corrupted by amplitude scaling; signs should survive")
	}
	// 16-QAM (24 Mbps): the scaled constellation points are not valid
	// codewords (Figure 2's subcarrier m) and the packet dies.
	if run(24) {
		t.Fatal("16-QAM packet survived amplitude modulation; Figure 2 says it must not")
	}
}
