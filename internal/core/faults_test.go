package core

import (
	"runtime"
	"testing"

	"repro/internal/faults"
)

// TestFaultedRunParallelMatchesRun extends the determinism contract to
// fault injection: with a profile attached, the fault timeline is addressed
// by packet index, so RunParallel must stay bit-identical to the serial Run
// for every worker count.
func TestFaultedRunParallelMatchesRun(t *testing.T) {
	profile, err := faults.Parse("chaos")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		radio Radio
		dist  float64
	}{
		{WiFi, 10},
		{ZigBee, 8},
		{Bluetooth, 6},
	}
	const packets = 6
	for _, c := range cases {
		cfg := DefaultConfig(c.radio, c.dist)
		cfg.Seed = 99
		cfg.Faults = profile
		if c.radio == WiFi {
			cfg.PayloadSize = 400
		}
		s, err := NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := s.Run(packets)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			par, err := s.RunParallel(packets, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par != serial {
				t.Fatalf("%v workers=%d diverged under faults:\n serial %+v\n par    %+v",
					c.radio, workers, serial, par)
			}
		}
	}
}

// TestCleanProfileBitIdentical: a profile whose processes never fire must
// leave every result bit-identical to a session with no profile at all —
// the acceptance criterion that faults-off output matches today's output.
func TestCleanProfileBitIdentical(t *testing.T) {
	base := DefaultConfig(ZigBee, 8)
	base.Seed = 7
	plain, err := NewSession(base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Run(4)
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	// PGoodBad 0: the burst chain steps its RNG but never leaves the good
	// state, so every Packet is clean and the channel takes the benign path.
	cfg.Faults = &faults.Profile{Burst: &faults.Burst{PGoodBad: 0, PBadGood: 1, ExtraLossDB: 30}}
	faulted, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := faulted.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("clean profile changed the run:\n plain   %+v\n faulted %+v", want, got)
	}

	// WithIntensity(0) must degenerate to exactly the nil-profile session.
	cfg.Faults = cfg.Faults.WithIntensity(0)
	if cfg.Faults != nil {
		t.Fatal("intensity 0 did not disable the profile")
	}
}

// TestOutageLosesEveryPacket: a permanent excitation outage short-circuits
// every slot before any PHY work — all packets lost, nothing captured.
func TestOutageLosesEveryPacket(t *testing.T) {
	cfg := DefaultConfig(ZigBee, 3)
	cfg.Faults = &faults.Profile{Outage: &faults.Outage{PeriodSlots: 1, LengthSlots: 1}}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsLost != 5 || res.TagBitsDecoded != 0 {
		t.Fatalf("permanent outage still delivered data: %+v", res)
	}
	if res.SamplesProcessed != 0 {
		t.Fatalf("outage slots pushed %d samples through the receiver", res.SamplesProcessed)
	}
	if res.ElapsedSeconds <= 0 {
		t.Fatal("outage slots must still consume air time")
	}
}

// TestAdvanceSlotsSkipsFaultTimeline: backing off jumps the session over a
// stretch of the fault timeline, so a sender that waits out a window of
// outages lands on a working slot.
func TestAdvanceSlotsSkipsFaultTimeline(t *testing.T) {
	cfg := DefaultConfig(ZigBee, 3)
	// Slots 0..9 out, 10+ clean (one non-repeating window via huge period).
	cfg.Faults = &faults.Profile{Outage: &faults.Outage{PeriodSlots: 1 << 20, LengthSlots: 10}}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tagBits := make([]byte, s.Capacity())
	pr, err := s.RunPacket(tagBits)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Fault.Outage {
		t.Fatal("slot 0 should be an outage")
	}
	s.AdvanceSlots(9) // slots 1..9 pass in silence
	if s.Slot() != 10 {
		t.Fatalf("slot counter at %d, want 10", s.Slot())
	}
	pr, err = s.RunPacket(tagBits)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Fault.Outage {
		t.Fatal("slot 10 should be past the outage window")
	}
	if !pr.Decoded {
		t.Fatal("clean close-range slot should decode")
	}
}

// TestSetQuaternary covers the mid-session scheme switch Send's fallback
// uses: capacity halves going quaternary→binary, and the switch refuses
// configurations quaternary translation cannot run on.
func TestSetQuaternary(t *testing.T) {
	cfg := DefaultConfig(WiFi, 2)
	cfg.WiFiRateMbps = 12
	cfg.Quaternary = true
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	quadCap := s.Capacity()
	if err := s.SetQuaternary(false); err != nil {
		t.Fatal(err)
	}
	binCap := s.Capacity()
	if binCap*2 != quadCap {
		t.Fatalf("capacity %d quaternary vs %d binary; want exactly 2x", quadCap, binCap)
	}
	if err := s.SetQuaternary(true); err != nil {
		t.Fatalf("recovery back to quaternary refused: %v", err)
	}
	if s.Capacity() != quadCap {
		t.Fatal("capacity did not recover with the scheme")
	}

	// 6 Mbps is BPSK: quaternary must be refused, and the failed switch
	// must not corrupt the session config.
	cfg6 := DefaultConfig(WiFi, 2)
	s6, err := NewSession(cfg6)
	if err != nil {
		t.Fatal(err)
	}
	if err := s6.SetQuaternary(true); err == nil {
		t.Fatal("quaternary on 6 Mbps BPSK accepted")
	}
	if s6.Config().Quaternary {
		t.Fatal("failed switch mutated the config")
	}
}

// TestValidateRejectsBadProfile: NewSession must refuse an invalid fault
// profile instead of running with it.
func TestValidateRejectsBadProfile(t *testing.T) {
	cfg := DefaultConfig(ZigBee, 3)
	cfg.Faults = &faults.Profile{Burst: &faults.Burst{PGoodBad: 2}}
	if _, err := NewSession(cfg); err == nil {
		t.Fatal("invalid profile accepted")
	}
}
