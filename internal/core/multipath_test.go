package core

import (
	"testing"

	"repro/internal/channel"
)

// TestWiFiBackscatterSurvivesMultipath: indoor echoes within the 800 ns
// cyclic prefix are absorbed by the LTF equaliser, so the tag's data rides
// through a frequency-selective channel untouched. Note the interplay with
// the envelope-detector latency: the tag's flips start 350 ns into each
// symbol's CP, so echoes up to ~400 ns still keep every FFT window clean.
func TestWiFiBackscatterSurvivesMultipath(t *testing.T) {
	cfg := DefaultConfig(WiFi, 5)
	cfg.Link.FadingK = 0
	cfg.Link.Multipath = []channel.Tap{
		{Delay: 150e-9, GainDB: -5},
		{Delay: 400e-9, GainDB: -10},
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.LossRate() > 0 {
		t.Fatalf("multipath within the CP lost %.0f%% of packets", res.LossRate()*100)
	}
	if res.BER() > 0.01 {
		t.Fatalf("multipath within the CP gave tag BER %.4f", res.BER())
	}
}

// TestZigBeeDegradesUnderLongEcho: the narrowband single-carrier receivers
// have no equaliser; a strong long echo smears chips and costs margin —
// the contrast that makes OFDM WiFi the most robust excitation.
func TestZigBeeDegradesUnderLongEcho(t *testing.T) {
	clean := DefaultConfig(ZigBee, 18)
	clean.Link.FadingK = 0
	sc, err := NewSession(clean)
	if err != nil {
		t.Fatal(err)
	}
	resClean, err := sc.Run(4)
	if err != nil {
		t.Fatal(err)
	}

	echo := DefaultConfig(ZigBee, 18)
	echo.Link.FadingK = 0
	echo.Link.Multipath = []channel.Tap{{Delay: 800e-9, GainDB: -3}}
	se, err := NewSession(echo)
	if err != nil {
		t.Fatal(err)
	}
	resEcho, err := se.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	// The echo must cost something: either packets or bit errors.
	if resEcho.TagBitsDecoded >= resClean.TagBitsDecoded && resEcho.BitErrors <= resClean.BitErrors {
		t.Fatalf("strong 800 ns echo cost nothing: clean %d bits/%d errs, echo %d bits/%d errs",
			resClean.TagBitsDecoded, resClean.BitErrors, resEcho.TagBitsDecoded, resEcho.BitErrors)
	}
}
