// Package zigbee implements the IEEE 802.15.4 2.4 GHz PHY used by ZigBee at
// complex baseband: nibble-to-32-chip direct-sequence spreading, OQPSK
// modulation with half-sine pulse shaping and a half-chip quadrature offset,
// preamble/SFD framing and CRC-16 FCS, plus a coherent correlation receiver.
//
// FreeRider backscatters ZigBee by rotating the reflected signal's phase
// (§2.3.2); a 180° rotation inverts every chip, which is *not* a codebook
// automorphism for the 16 quasi-orthogonal sequences — the receiver maps the
// inverted sequence to a deterministic wrong symbol with reduced margin.
// That is why the paper reports a higher (~5e-2) raw tag BER for ZigBee and
// spreads one tag bit over N OQPSK symbols.
package zigbee

import "fmt"

// PHY constants for the 2.4 GHz O-QPSK PHY.
const (
	ChipRate        = 2e6 // chips per second
	SamplesPerChip  = 4   // simulation oversampling
	SampleRate      = ChipRate * SamplesPerChip
	ChipsPerSymbol  = 32
	BitsPerSymbol   = 4
	SymbolRate      = ChipRate / ChipsPerSymbol // 62.5 ksym/s
	BitRate         = SymbolRate * BitsPerSymbol
	SymbolSamples   = ChipsPerSymbol * SamplesPerChip
	PreambleSymbols = 8 // 4 bytes of zeros
	SFD             = 0xA7
	MaxPayload      = 127
	ChannelWidth    = 2e6 // occupied bandwidth, Hz
)

// chip0 is the PN sequence for data symbol 0 (IEEE 802.15.4-2011 table 73),
// chip c0 first.
var chip0 = [ChipsPerSymbol]byte{
	1, 1, 0, 1, 1, 0, 0, 1,
	1, 1, 0, 0, 0, 0, 1, 1,
	0, 1, 0, 1, 0, 0, 1, 0,
	0, 0, 1, 0, 1, 1, 1, 0,
}

// ChipSequences holds the 16 spreading sequences. Symbols 1..7 are symbol 0
// cyclically right-shifted by 4·s chips; symbols 8..15 are symbols 0..7 with
// the odd-indexed (quadrature) chips inverted.
var ChipSequences = buildSequences()

func buildSequences() [16][ChipsPerSymbol]byte {
	var out [16][ChipsPerSymbol]byte
	for s := 0; s < 8; s++ {
		for i := 0; i < ChipsPerSymbol; i++ {
			out[s][i] = chip0[((i-4*s)%ChipsPerSymbol+ChipsPerSymbol)%ChipsPerSymbol]
		}
	}
	for s := 8; s < 16; s++ {
		for i := 0; i < ChipsPerSymbol; i++ {
			c := out[s-8][i]
			if i%2 == 1 {
				c ^= 1
			}
			out[s][i] = c
		}
	}
	return out
}

// SymbolsFromBytes splits bytes into 4-bit symbols, low nibble first
// (§10.2.3 bit ordering).
func SymbolsFromBytes(data []byte) []byte {
	out := make([]byte, 0, len(data)*2)
	for _, b := range data {
		out = append(out, b&0x0F, b>>4)
	}
	return out
}

// BytesFromSymbols reassembles bytes from 4-bit symbols, low nibble first.
func BytesFromSymbols(sym []byte) ([]byte, error) {
	if len(sym)%2 != 0 {
		return nil, fmt.Errorf("zigbee: odd symbol count %d", len(sym))
	}
	out := make([]byte, len(sym)/2)
	for i := range out {
		out[i] = sym[2*i]&0x0F | sym[2*i+1]<<4
	}
	return out, nil
}

// SpreadSymbols expands data symbols into their chip sequences.
func SpreadSymbols(sym []byte) ([]byte, error) {
	out := make([]byte, 0, len(sym)*ChipsPerSymbol)
	for _, s := range sym {
		if s > 15 {
			return nil, fmt.Errorf("zigbee: symbol %d out of range", s)
		}
		out = append(out, ChipSequences[s][:]...)
	}
	return out, nil
}

// CorrelateChips returns the correlation (agreements minus disagreements,
// range [-32, 32]) between a 32-chip window and sequence s.
func CorrelateChips(chips []byte, s int) int {
	acc := 0
	for i := 0; i < ChipsPerSymbol; i++ {
		if chips[i]&1 == ChipSequences[s][i] {
			acc++
		} else {
			acc--
		}
	}
	return acc
}

// BestSymbol returns the data symbol whose sequence best matches the 32-chip
// window, along with the winning correlation value.
func BestSymbol(chips []byte) (byte, int) {
	best, bestC := byte(0), -ChipsPerSymbol-1
	for s := 0; s < 16; s++ {
		if c := CorrelateChips(chips, s); c > bestC {
			best, bestC = byte(s), c
		}
	}
	return best, bestC
}

// BestWorstSymbol is BestSymbol extended with the codebook's worst (most
// negative) correlation over the same window. Because complementing every
// chip negates the correlation — corr(r, ~x) = −corr(r, x) — the best
// match against the *complemented* codebook is exactly −worstC, so
// bestC + worstC < 0 means the window correlates better with a
// complemented sequence than with any true one: the single-receiver flip
// feature for a tag that phase-inverts chips.
func BestWorstSymbol(chips []byte) (best byte, bestC, worstC int) {
	best, bestC = byte(0), -ChipsPerSymbol-1
	worstC = ChipsPerSymbol + 1
	for s := 0; s < 16; s++ {
		c := CorrelateChips(chips, s)
		if c > bestC {
			best, bestC = byte(s), c
		}
		if c < worstC {
			worstC = c
		}
	}
	return best, bestC, worstC
}

// FrameDuration returns the airtime of a frame with an n-byte payload
// (preamble 4 B + SFD 1 B + length 1 B + payload + FCS 2 B at 250 kbps).
func FrameDuration(n int) float64 {
	total := 4 + 1 + 1 + n + 2
	return float64(total) * 8 / BitRate
}
