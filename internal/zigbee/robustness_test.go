package zigbee

import (
	"math/rand"
	"testing"

	"repro/internal/signal"
)

func TestReceiveTruncatedMidFrame(t *testing.T) {
	sig, err := NewTransmitter().Transmit(make([]byte, 80))
	if err != nil {
		t.Fatal(err)
	}
	cut := (PreambleSymbols + 6) * SymbolSamples // inside the body
	cap := signal.New(SampleRate, cut+100)
	copy(cap.Samples[100:], sig.Samples[:cut])
	if _, err := NewReceiver().Receive(cap); err == nil {
		t.Fatal("truncated frame decoded")
	}
}

func TestReceiveCorruptedSFD(t *testing.T) {
	sig, err := NewTransmitter().Transmit([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	// Replace the SFD symbols with noise: the receiver must give up.
	rng := rand.New(rand.NewSource(3))
	lo := PreambleSymbols * SymbolSamples
	for i := lo; i < lo+2*SymbolSamples; i++ {
		sig.Samples[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	cap := signal.New(SampleRate, len(sig.Samples)+200)
	copy(cap.Samples[100:], sig.Samples)
	if _, err := NewReceiver().Receive(cap); err == nil {
		t.Fatal("frame with destroyed SFD decoded")
	}
}

func TestCorruptedPayloadFailsFCS(t *testing.T) {
	sig, err := NewTransmitter().Transmit([]byte("integrity matters here"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip the phase of a few mid-body symbols (a fake tag!) so symbols
	// decode differently; the FCS must catch it.
	lo := (PreambleSymbols + 2 + 2 + 4) * SymbolSamples
	for i := lo; i < lo+8*SymbolSamples && i < len(sig.Samples); i++ {
		sig.Samples[i] = -sig.Samples[i]
	}
	cap := signal.New(SampleRate, len(sig.Samples)+200)
	copy(cap.Samples[100:], sig.Samples)
	f, err := NewReceiver().Receive(cap)
	if err != nil {
		t.Skip("frame lost entirely; acceptable")
	}
	if f.FCSOK {
		t.Fatal("corrupted payload passed FCS")
	}
}

func TestDecodeUnderCFO(t *testing.T) {
	p := []byte("zigbee rides a 15 kHz offset")
	sig, err := NewTransmitter().Transmit(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfo := range []float64{5e3, -10e3, 15e3} {
		cap := signal.New(SampleRate, len(sig.Samples)+300)
		copy(cap.Samples[100:], sig.Samples)
		cap.FrequencyShift(cfo)
		f, err := NewReceiver().Receive(cap)
		if err != nil {
			t.Fatalf("cfo %g: %v", cfo, err)
		}
		if !f.FCSOK || string(f.Payload) != string(p) {
			t.Fatalf("cfo %g: payload corrupted", cfo)
		}
	}
}

func TestCFOBreaksCoherentDecodeWithoutCorrection(t *testing.T) {
	sig, err := NewTransmitter().Transmit([]byte("uncorrected"))
	if err != nil {
		t.Fatal(err)
	}
	cap := signal.New(SampleRate, len(sig.Samples)+300)
	copy(cap.Samples[100:], sig.Samples)
	cap.FrequencyShift(15e3)
	rx := NewReceiver()
	rx.CFOCorrection = false
	if f, err := rx.Receive(cap); err == nil && f.FCSOK {
		t.Fatal("15 kHz CFO decoded cleanly without correction")
	}
}
