package zigbee

import (
	"encoding/binary"
	"fmt"
)

// DataFrame is a minimal IEEE 802.15.4 data MPDU with short (16-bit)
// addressing and PAN-ID compression: frame control, sequence number,
// destination PAN, destination and source addresses, payload. The PHY FCS
// (CRC-16) is appended by the transmitter.
type DataFrame struct {
	Seq     byte
	DstPAN  uint16
	DstAddr uint16
	SrcAddr uint16
	Payload []byte
}

// frameControlData: type=data (001), PAN-ID compression, dst and src short
// addressing, 2006 frame version.
const frameControlData uint16 = 0x8841

// mhrLen is the MAC header length with short addressing.
const mhrLen = 9

// Marshal serialises the MPDU (header + payload), ready for Transmit.
func (f *DataFrame) Marshal() []byte {
	out := make([]byte, mhrLen, mhrLen+len(f.Payload))
	binary.LittleEndian.PutUint16(out[0:], frameControlData)
	out[2] = f.Seq
	binary.LittleEndian.PutUint16(out[3:], f.DstPAN)
	binary.LittleEndian.PutUint16(out[5:], f.DstAddr)
	binary.LittleEndian.PutUint16(out[7:], f.SrcAddr)
	return append(out, f.Payload...)
}

// ParseDataFrame decodes an MPDU produced by Marshal (the PHY layer has
// already verified and stripped the FCS).
func ParseDataFrame(mpdu []byte) (*DataFrame, error) {
	if len(mpdu) < mhrLen {
		return nil, fmt.Errorf("zigbee: MPDU %d bytes too short", len(mpdu))
	}
	if fc := binary.LittleEndian.Uint16(mpdu[0:]); fc != frameControlData {
		return nil, fmt.Errorf("zigbee: unsupported frame control %#04x", fc)
	}
	return &DataFrame{
		Seq:     mpdu[2],
		DstPAN:  binary.LittleEndian.Uint16(mpdu[3:]),
		DstAddr: binary.LittleEndian.Uint16(mpdu[5:]),
		SrcAddr: binary.LittleEndian.Uint16(mpdu[7:]),
		Payload: append([]byte(nil), mpdu[mhrLen:]...),
	}, nil
}
