package zigbee

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/bits"
	"repro/internal/signal"
)

// Errors returned by the receiver.
var (
	ErrNoFrame   = errors.New("zigbee: no frame found")
	ErrTruncated = errors.New("zigbee: capture truncated before frame end")
)

// Transmitter synthesises 802.15.4 frames at complex baseband.
type Transmitter struct{}

// NewTransmitter returns a ZigBee PHY transmitter.
func NewTransmitter() *Transmitter { return &Transmitter{} }

// Transmit builds the baseband waveform of one PHY frame: preamble (4 zero
// bytes), SFD, 7-bit length, payload, CRC-16 FCS. Unit mean power.
func (t *Transmitter) Transmit(payload []byte) (*signal.Signal, error) {
	if len(payload) > MaxPayload-2 {
		return nil, fmt.Errorf("zigbee: payload %d exceeds %d bytes", len(payload), MaxPayload-2)
	}
	fcs := bits.CRC16CCITT(payload)
	frame := make([]byte, 0, 6+len(payload)+2)
	frame = append(frame, 0, 0, 0, 0, SFD, byte(len(payload)+2))
	frame = append(frame, payload...)
	frame = append(frame, byte(fcs), byte(fcs>>8))

	chips, err := SpreadSymbols(SymbolsFromBytes(frame))
	if err != nil {
		return nil, err
	}
	return ModulateChips(chips), nil
}

// ModulateChips produces the OQPSK half-sine waveform of a chip stream.
// Even-indexed chips ride the in-phase rail, odd-indexed chips the
// quadrature rail delayed by half a chip — the structure whose 180°-flip
// sensitivity §3.2.2 of the paper discusses.
func ModulateChips(chips []byte) *signal.Signal {
	n := (len(chips) + 2) * SamplesPerChip
	s := signal.New(SampleRate, n)
	for k, c := range chips {
		level := float64(2*int(c&1) - 1)
		// Chip k's half-sine spans t in [k, k+2] chip periods.
		start := k * SamplesPerChip
		for i := 0; i < 2*SamplesPerChip; i++ {
			v := level * halfSine[i]
			idx := start + i
			if idx >= n {
				break
			}
			if k%2 == 0 {
				s.Samples[idx] += complex(v, 0)
			} else {
				s.Samples[idx] += complex(0, v)
			}
		}
	}
	// Normalise to unit mean power (I and Q rails overlap giving ~1.0).
	p := s.MeanPower()
	if p > 0 {
		s.Scale(complex(1/math.Sqrt(p), 0))
	}
	return s
}

// RxFrame is one decoded 802.15.4 frame.
type RxFrame struct {
	Payload  []byte
	Symbols  []byte  // decoded data symbols including length field onward
	StartIdx int     // sample index of the preamble start
	RSSI     float64 // mean power over the frame, dBm scale
	FCSOK    bool
	// CorrMargin is the mean winning correlation (0..32) across the frame's
	// symbols — a quality indicator that collapses when a tag flips phase.
	CorrMargin float64
	// Flips is the per-symbol flip feature, aligned 1:1 with Symbols: 1
	// when the chip window correlated better with the complemented
	// codebook than the true one (see BestWorstSymbol), i.e. the tag was
	// phase-inverting during that symbol. Collected only when
	// Receiver.CollectFlips is set; the single-receiver differential
	// decoder consumes it.
	Flips []byte
}

// Receiver decodes 802.15.4 frames from complex baseband captures.
type Receiver struct {
	// DetectionThreshold is the minimum normalised preamble correlation.
	DetectionThreshold float64
	// CFOCorrection estimates residual carrier offset from the symbol-
	// periodic preamble (delay-one-symbol autocorrelation) and derotates
	// the frame before coherent demodulation. Preamble-only, hence
	// transparent to the tag's data-region phase modulation. On by
	// default.
	CFOCorrection bool
	// CollectFlips records each data symbol's complemented-codebook flip
	// feature on RxFrame.Flips for the single-receiver differential
	// decoder. Off by default so the dual-receiver path's work and
	// allocations are unchanged.
	CollectFlips bool
}

// NewReceiver returns a receiver with the default threshold and CFO
// correction enabled.
func NewReceiver() *Receiver { return &Receiver{DetectionThreshold: 0.5, CFOCorrection: true} }

// estimateCFO reads the frequency offset from the preamble's symbol
// periodicity in two stages: the lag-1 autocorrelation gives a coarse,
// wide-range estimate (±31 kHz unambiguous) and the lag-4 autocorrelation
// a 4× finer one whose 2π ambiguity the coarse stage resolves. The finer
// stage matters because even ~100 Hz of residual rotates the constellation
// by a radian over a full 802.15.4 frame.
func estimateCFO(s []complex128, start int, rate float64) float64 {
	lagEstimate := func(lag int) (float64, bool) {
		var acc complex128
		n := (PreambleSymbols - lag) * SymbolSamples
		for i := 0; i < n; i++ {
			acc += s[start+i+lag*SymbolSamples] * cmplx.Conj(s[start+i])
		}
		if acc == 0 {
			return 0, false
		}
		return cmplx.Phase(acc) / (2 * math.Pi * float64(lag*SymbolSamples)) * rate, true
	}
	coarse, ok := lagEstimate(1)
	if !ok {
		return 0
	}
	fine, ok := lagEstimate(4)
	if !ok {
		return coarse
	}
	// Unwrap the fine estimate onto the coarse one: its ambiguity step is
	// rate/(4·SymbolSamples).
	step := rate / float64(4*SymbolSamples)
	fine += step * math.Round((coarse-fine)/step)
	return fine
}

// halfSine tabulates the chip pulse shape once; every chip multiplies the
// same SamplesPerChip·2 sine values by ±1, so the table is bit-identical to
// the former per-sample math.Sin calls.
var halfSine = buildHalfSine()

func buildHalfSine() []float64 {
	t := make([]float64, 2*SamplesPerChip)
	for i := range t {
		t[i] = math.Sin(math.Pi * float64(i) / float64(2*SamplesPerChip))
	}
	return t
}

// preambleTemplate is the modulated 8-symbol preamble used for detection
// and channel-gain estimation.
var preambleTemplate = buildPreambleTemplate()

// preambleConjTemplate caches the conjugated template for the detection
// scan's inner correlation loop.
var preambleConjTemplate = buildPreambleConjTemplate()

func buildPreambleConjTemplate() []complex128 {
	out := make([]complex128, len(preambleTemplate))
	for i, v := range preambleTemplate {
		out[i] = cmplx.Conj(v)
	}
	return out
}

func buildPreambleTemplate() []complex128 {
	chips, err := SpreadSymbols(make([]byte, PreambleSymbols))
	if err != nil {
		panic("zigbee: preamble spread: " + err.Error())
	}
	return ModulateChips(chips).Samples[:PreambleSymbols*SymbolSamples]
}

// Receive finds and decodes the first frame in the capture.
func (rx *Receiver) Receive(cap *signal.Signal) (*RxFrame, error) {
	start, gain, q := rx.detect(cap, 0)
	if start < 0 || q < rx.DetectionThreshold {
		return nil, ErrNoFrame
	}
	return rx.decodeFrom(cap, start, gain)
}

// ReceiveAll decodes every frame in the capture in time order.
func (rx *Receiver) ReceiveAll(cap *signal.Signal) []*RxFrame {
	var out []*RxFrame
	from := 0
	for {
		start, gain, q := rx.detect(cap, from)
		if start < 0 {
			return out
		}
		if q < rx.DetectionThreshold {
			from = start + SymbolSamples
			continue
		}
		f, err := rx.decodeFrom(cap, start, gain)
		if err != nil {
			from = start + SymbolSamples
			continue
		}
		out = append(out, f)
		from = start + (PreambleSymbols+2+2+len(f.Payload)*2+4)*SymbolSamples
	}
}

// Detect locates the first preamble in the capture, returning its start
// sample index and the normalised correlation quality ((-1, 0) if nothing
// is found).
func (rx *Receiver) Detect(cap *signal.Signal) (int, float64) {
	start, _, q := rx.detect(cap, 0)
	return start, q
}

// detectSegments is the number of preamble slices correlated separately:
// summing per-slice correlation magnitudes keeps detection working under
// carrier offsets that would smear one long coherent correlation (each
// 8 µs slice only rotates ~58° at 20 kHz CFO).
const detectSegments = PreambleSymbols * 2

// detect correlates the preamble template slice-wise, returning the start
// index, the complex channel gain estimate (coherent, so only valid after
// CFO removal) and the normalised quality.
func (rx *Receiver) detect(cap *signal.Signal, from int) (int, complex128, float64) {
	tpl := preambleTemplate
	seg := len(tpl) / detectSegments
	var tplPow float64
	for _, v := range tpl {
		tplPow += real(v)*real(v) + imag(v)*imag(v)
	}
	n := len(cap.Samples)
	best, bestQ := -1, 0.0
	var bestGain complex128
	for i := from; i+len(tpl) <= n; i++ {
		var mag float64
		var coh complex128
		var pow float64
		// The correlation consumes the pre-conjugated template through the
		// same real-arithmetic multiply/add order the complex expression
		// `acc += x * cmplx.Conj(tpl[j])` lowers to, so the scan result is
		// bit-identical while skipping per-sample conjugation and bounds
		// checks.
		for s := 0; s < detectSegments; s++ {
			var accR, accI float64
			cs := preambleConjTemplate[s*seg : (s+1)*seg : (s+1)*seg]
			xs := cap.Samples[i+s*seg:]
			xs = xs[:len(cs):len(cs)]
			for j, c := range cs {
				x := xs[j]
				xr, xi := real(x), imag(x)
				cr, ci := real(c), imag(c)
				accR += xr*cr - xi*ci
				accI += xr*ci + xi*cr
				pow += xr*xr + xi*xi
			}
			mag += math.Hypot(accR, accI)
			coh += complex(accR, accI)
		}
		if pow == 0 {
			continue
		}
		q := mag / math.Sqrt(pow*tplPow)
		if q > bestQ {
			best, bestQ = i, q
			bestGain = coh / complex(tplPow, 0)
		}
		// The preamble is symbol-periodic, so misalignments by a whole
		// symbol also correlate strongly; keep scanning one full symbol
		// past the best candidate before accepting it. Fixed internal
		// gate: a low user threshold must not stop the scan on a noise
		// blip before the true preamble.
		if bestQ > 0.4 && i > best+SymbolSamples {
			break
		}
	}
	return best, bestGain, bestQ
}

// decodeFrom demodulates a frame whose preamble starts at sample start.
func (rx *Receiver) decodeFrom(cap *signal.Signal, start int, gain complex128) (*RxFrame, error) {
	samples := cap.Samples
	if rx.CFOCorrection {
		// Derotate a copy of the frame region using the preamble-derived
		// offset, then re-estimate the channel gain coherently.
		cfo := estimateCFO(samples, start, cap.Rate)
		work := append([]complex128(nil), samples[start:]...)
		signal.Derotate(work, cfo, cap.Rate)
		samples = make([]complex128, start, start+len(work))
		samples = append(samples, work...)
		var acc complex128
		var tplPow float64
		for j, r := range preambleTemplate {
			acc += samples[start+j] * cmplx.Conj(r)
			tplPow += real(r)*real(r) + imag(r)*imag(r)
		}
		gain = acc / complex(tplPow, 0)
	}
	if gain == 0 {
		return nil, ErrNoFrame
	}
	inv := 1 / gain
	demodSymbol := func(symStart int) (byte, int, byte, error) {
		chips := make([]byte, ChipsPerSymbol)
		for k := 0; k < ChipsPerSymbol; k++ {
			// Chip k peaks at (k+1)·Tc after its rail's start.
			idx := symStart + (k+1)*SamplesPerChip
			if idx >= len(samples) {
				return 0, 0, 0, ErrTruncated
			}
			v := samples[idx] * inv
			var level float64
			if k%2 == 0 {
				level = real(v)
			} else {
				level = imag(v)
			}
			if level >= 0 {
				chips[k] = 1
			}
		}
		if rx.CollectFlips {
			s, c, worst := BestWorstSymbol(chips)
			var flip byte
			if c+worst < 0 {
				flip = 1
			}
			return s, c, flip, nil
		}
		s, c := BestSymbol(chips)
		return s, c, 0, nil
	}

	// Skip preamble, check SFD (2 symbols), read length, then payload+FCS.
	pos := start + PreambleSymbols*SymbolSamples
	var hdr [4]byte // SFD low, SFD high, len low, len high nibbles
	var corrSum, corrN float64
	for i := 0; i < 4; i++ {
		s, c, _, err := demodSymbol(pos)
		if err != nil {
			return nil, err
		}
		hdr[i] = s
		corrSum += float64(c)
		corrN++
		pos += SymbolSamples
	}
	if hdr[0]|hdr[1]<<4 != SFD {
		return nil, ErrNoFrame
	}
	length := int(hdr[2] | hdr[3]<<4)
	if length < 2 || length > MaxPayload {
		return nil, ErrNoFrame
	}

	syms := make([]byte, 0, length*2)
	var flips []byte
	if rx.CollectFlips {
		flips = make([]byte, 0, length*2)
	}
	for i := 0; i < length*2; i++ {
		s, c, flip, err := demodSymbol(pos)
		if err != nil {
			return nil, err
		}
		syms = append(syms, s)
		if rx.CollectFlips {
			flips = append(flips, flip)
		}
		corrSum += float64(c)
		corrN++
		pos += SymbolSamples
	}
	body, err := BytesFromSymbols(syms)
	if err != nil {
		return nil, err
	}
	payload := body[:length-2]
	fcs := uint16(body[length-2]) | uint16(body[length-1])<<8

	frameSamples := &signal.Signal{Rate: cap.Rate, Samples: samples[start:min(pos, len(samples))]}
	return &RxFrame{
		Payload:    payload,
		Symbols:    syms,
		StartIdx:   start,
		RSSI:       frameSamples.MeanPowerDBm(),
		FCSOK:      bits.CRC16CCITT(payload) == fcs,
		CorrMargin: corrSum / corrN,
		Flips:      flips,
	}, nil
}
