package zigbee

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/signal"
)

func TestDataFrameRoundTrip(t *testing.T) {
	f := &DataFrame{Seq: 42, DstPAN: 0x1234, DstAddr: 0xBEEF, SrcAddr: 0xCAFE,
		Payload: []byte("sensor reading")}
	got, err := ParseDataFrame(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != f.Seq || got.DstPAN != f.DstPAN || got.DstAddr != f.DstAddr ||
		got.SrcAddr != f.SrcAddr || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestDataFrameRoundTripProperty(t *testing.T) {
	fn := func(seq byte, pan, dst, src uint16, payload []byte) bool {
		if len(payload) > 100 {
			payload = payload[:100]
		}
		f := &DataFrame{Seq: seq, DstPAN: pan, DstAddr: dst, SrcAddr: src, Payload: payload}
		got, err := ParseDataFrame(f.Marshal())
		return err == nil && got.Seq == seq && got.DstPAN == pan &&
			got.DstAddr == dst && got.SrcAddr == src && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestParseDataFrameRejects(t *testing.T) {
	if _, err := ParseDataFrame(make([]byte, 4)); err == nil {
		t.Error("short MPDU accepted")
	}
	bad := (&DataFrame{}).Marshal()
	bad[0] = 0x00
	if _, err := ParseDataFrame(bad); err == nil {
		t.Error("wrong frame control accepted")
	}
}

func TestDataFrameOverTheAir(t *testing.T) {
	f := &DataFrame{Seq: 7, DstPAN: 0xABCD, DstAddr: 1, SrcAddr: 2,
		Payload: []byte("over the 802.15.4 air")}
	sig, err := NewTransmitter().Transmit(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	cap := signal.New(SampleRate, len(sig.Samples)+300)
	copy(cap.Samples[100:], sig.Samples)
	frame, err := NewReceiver().Receive(cap)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.FCSOK {
		t.Fatal("FCS failed")
	}
	got, err := ParseDataFrame(frame.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Fatal("MPDU payload corrupted over the air")
	}
}
