package zigbee

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/signal"
)

func TestChipSequenceProperties(t *testing.T) {
	// All 16 sequences distinct.
	for a := 0; a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			if ChipSequences[a] == ChipSequences[b] {
				t.Fatalf("sequences %d and %d identical", a, b)
			}
		}
	}
	// Autocorrelation 32, cross-correlation magnitude well below 32.
	for a := 0; a < 16; a++ {
		if c := CorrelateChips(ChipSequences[a][:], a); c != ChipsPerSymbol {
			t.Fatalf("autocorrelation of %d = %d", a, c)
		}
		for b := 0; b < 16; b++ {
			if a == b {
				continue
			}
			if c := CorrelateChips(ChipSequences[a][:], b); c > 20 || c < -20 {
				t.Fatalf("cross-correlation %d/%d = %d, |c| too high", a, b, c)
			}
		}
	}
}

func TestChipSequenceShiftStructure(t *testing.T) {
	// Symbol 1 is symbol 0 rotated right by 4 chips.
	for i := 0; i < ChipsPerSymbol; i++ {
		if ChipSequences[1][(i+4)%ChipsPerSymbol] != ChipSequences[0][i] {
			t.Fatal("symbol 1 is not symbol 0 rotated by 4")
		}
	}
	// Symbol 8 is symbol 0 with odd chips inverted.
	for i := 0; i < ChipsPerSymbol; i++ {
		want := ChipSequences[0][i]
		if i%2 == 1 {
			want ^= 1
		}
		if ChipSequences[8][i] != want {
			t.Fatal("symbol 8 odd-chip inversion broken")
		}
	}
}

func TestSymbolsBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		out, err := BytesFromSymbols(SymbolsFromBytes(data))
		return err == nil && bytes.Equal(out, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := BytesFromSymbols(make([]byte, 3)); err == nil {
		t.Error("odd symbol count accepted")
	}
}

func TestSymbolsLowNibbleFirst(t *testing.T) {
	sym := SymbolsFromBytes([]byte{0xA3})
	if sym[0] != 0x3 || sym[1] != 0xA {
		t.Fatalf("0xA3 -> %v, want [3 10]", sym)
	}
}

func TestSpreadSymbolsValidation(t *testing.T) {
	if _, err := SpreadSymbols([]byte{16}); err == nil {
		t.Error("symbol 16 accepted")
	}
	chips, err := SpreadSymbols([]byte{0, 5})
	if err != nil || len(chips) != 64 {
		t.Fatalf("spread: %v, len %d", err, len(chips))
	}
	if !bytes.Equal(chips[32:], ChipSequences[5][:]) {
		t.Error("second symbol chips wrong")
	}
}

func TestBestSymbolDecodesCleanChips(t *testing.T) {
	for s := 0; s < 16; s++ {
		got, c := BestSymbol(ChipSequences[s][:])
		if got != byte(s) || c != ChipsPerSymbol {
			t.Fatalf("symbol %d decoded as %d (corr %d)", s, got, c)
		}
	}
}

func TestBestSymbolToleratesChipErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		s := rng.Intn(16)
		chips := append([]byte(nil), ChipSequences[s][:]...)
		// Flip 5 random chips; min cross-distance is large enough to survive.
		for _, i := range rng.Perm(ChipsPerSymbol)[:5] {
			chips[i] ^= 1
		}
		if got, _ := BestSymbol(chips); got != byte(s) {
			t.Fatalf("symbol %d with 5 chip errors decoded as %d", s, got)
		}
	}
}

// TestInvertedChipsDecodeDeterministically pins down the ZigBee codeword-
// translation behaviour: a 180° phase flip inverts all 32 chips, which the
// correlation receiver maps to a *consistent wrong symbol* with reduced
// margin — the mechanism behind the paper's differential decoding and its
// elevated ZigBee BER.
func TestInvertedChipsDecodeDeterministically(t *testing.T) {
	for s := 0; s < 16; s++ {
		chips := make([]byte, ChipsPerSymbol)
		for i, c := range ChipSequences[s] {
			chips[i] = c ^ 1
		}
		got1, c1 := BestSymbol(chips)
		got2, c2 := BestSymbol(chips)
		if got1 != got2 || c1 != c2 {
			t.Fatal("inverted decode not deterministic")
		}
		if got1 == byte(s) {
			t.Fatalf("inverted sequence of %d still decodes to %d", s, s)
		}
		if c1 >= ChipsPerSymbol/2 {
			t.Fatalf("inverted decode margin %d unexpectedly high", c1)
		}
	}
}

func TestModulateChipsHalfSineStructure(t *testing.T) {
	chips := []byte{1, 1, 0, 0}
	s := ModulateChips(chips)
	if s.Rate != SampleRate {
		t.Fatalf("rate %g", s.Rate)
	}
	// Chip 0 (I rail, level +1) peaks at sample 4 with positive I.
	if real(s.Samples[SamplesPerChip]) <= 0 {
		t.Error("chip 0 peak not positive on I")
	}
	// Chip 1 (Q rail, +1) peaks at sample 8.
	if imag(s.Samples[2*SamplesPerChip]) <= 0 {
		t.Error("chip 1 peak not positive on Q")
	}
	// Chip 2 (I rail, -1) peaks at sample 12.
	if real(s.Samples[3*SamplesPerChip]) >= 0 {
		t.Error("chip 2 peak not negative on I")
	}
	// Unit mean power.
	if p := s.MeanPower(); math.Abs(p-1) > 1e-9 {
		t.Errorf("mean power %g", p)
	}
}

func TestTransmitReceiveClean(t *testing.T) {
	payloads := [][]byte{
		[]byte("hi"),
		[]byte("FreeRider over 802.15.4 OQPSK DSSS"),
		bytes.Repeat([]byte{0xA5}, 60),
	}
	for _, p := range payloads {
		sig, err := NewTransmitter().Transmit(p)
		if err != nil {
			t.Fatal(err)
		}
		cap := signal.New(SampleRate, len(sig.Samples)+200)
		copy(cap.Samples[80:], sig.Samples)
		f, err := NewReceiver().Receive(cap)
		if err != nil {
			t.Fatalf("payload %q: %v", p, err)
		}
		if !bytes.Equal(f.Payload, p) {
			t.Fatalf("payload mismatch: %q vs %q", f.Payload, p)
		}
		if !f.FCSOK {
			t.Fatal("FCS failed on clean channel")
		}
		if f.StartIdx != 80 {
			t.Fatalf("start %d, want 80", f.StartIdx)
		}
		if f.CorrMargin < 30 {
			t.Fatalf("clean correlation margin %g too low", f.CorrMargin)
		}
	}
}

func TestTransmitReceiveWithChannelImpairments(t *testing.T) {
	p := []byte("impaired channel test payload")
	sig, err := NewTransmitter().Transmit(p)
	if err != nil {
		t.Fatal(err)
	}
	cap := signal.New(SampleRate, len(sig.Samples)+400)
	copy(cap.Samples[133:], sig.Samples)
	// Random complex gain (attenuation + phase) and moderate noise.
	cap.Scale(complex(0.05, 0))
	cap.PhaseShift(1.2)
	cap.AddAWGN(1e-5, rand.New(rand.NewSource(77)))
	f, err := NewReceiver().Receive(cap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Payload, p) || !f.FCSOK {
		t.Fatal("decode failed under gain/phase/noise")
	}
}

func TestReceiverRejectsNoise(t *testing.T) {
	cap := signal.New(SampleRate, 20000)
	cap.AddAWGN(0.01, rand.New(rand.NewSource(5)))
	if _, err := NewReceiver().Receive(cap); err == nil {
		t.Error("decoded a frame from pure noise")
	}
}

func TestTransmitValidation(t *testing.T) {
	if _, err := NewTransmitter().Transmit(make([]byte, MaxPayload-1)); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestFrameDuration(t *testing.T) {
	// 20-byte payload: (4+1+1+20+2)*8 bits / 250kbps = 896us.
	got := FrameDuration(20)
	if math.Abs(got-896e-6) > 1e-9 {
		t.Fatalf("duration %g, want 896us", got)
	}
}

func TestReceiveAllMultipleFrames(t *testing.T) {
	a, _ := NewTransmitter().Transmit([]byte("frame one"))
	b, _ := NewTransmitter().Transmit([]byte("frame two is longer"))
	cap := signal.New(SampleRate, len(a.Samples)+len(b.Samples)+3000)
	copy(cap.Samples[100:], a.Samples)
	copy(cap.Samples[100+len(a.Samples)+1500:], b.Samples)
	frames := NewReceiver().ReceiveAll(cap)
	if len(frames) != 2 {
		t.Fatalf("decoded %d frames, want 2", len(frames))
	}
	if string(frames[0].Payload) != "frame one" || string(frames[1].Payload) != "frame two is longer" {
		t.Fatal("frame payloads wrong or out of order")
	}
}
