package zigbee

import "fmt"

// translatedSymbols[s] is the data symbol a correlation receiver decodes
// when every chip of symbol s's spreading sequence is inverted — the 180°
// phase rotation a FreeRider tag applies (§2.3.2). Inversion is not an
// automorphism of the 16 quasi-orthogonal sequences, so the receiver maps
// the inverted sequence to a deterministic *wrong* symbol with reduced
// correlation margin; this table is that confusion mapping.
var translatedSymbols = buildTranslated()

func buildTranslated() [16]byte {
	var out [16]byte
	for s := 0; s < 16; s++ {
		inv := make([]byte, ChipsPerSymbol)
		for i := 0; i < ChipsPerSymbol; i++ {
			inv[i] = ChipSequences[s][i] ^ 1
		}
		out[s], _ = BestSymbol(inv)
	}
	return out
}

// TranslatedSymbol returns the symbol an unmodified 802.15.4 receiver
// decodes in place of s when the backscattered chips arrive inverted (the
// tag's 180° rotation). It is the ZigBee element-level translation the
// stream codec uses where WiFi and Bluetooth use a plain bit flip.
func TranslatedSymbol(s byte) (byte, error) {
	if s > 15 {
		return 0, fmt.Errorf("zigbee: symbol %d out of range", s)
	}
	return translatedSymbols[s], nil
}
