package freerider

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestDecodeBatchMatchesSerialCalls pins the batch decode contract: slot i
// must be exactly what the serial DecodeStream / DecodeDifferentialStream
// call returns for request i, for any worker count, including slots whose
// request is malformed.
func TestDecodeBatchMatchesSerialCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	stream := func(r Radio, n int) []byte {
		limit := int(streamAlphabet(r))
		s := make([]byte, n)
		for i := range s {
			s[i] = byte(rng.Intn(limit))
		}
		return s
	}
	var reqs []DecodeRequest
	for _, r := range []Radio{WiFi, ZigBee, Bluetooth} {
		ref := stream(r, 96)
		rx, _, err := EncodeStream(r, ref, []byte{1, 0, 1, 1}, 24)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, DecodeRequest{Radio: r, Ref: ref, RX: rx, Window: 24})
		feats := make([]byte, 64)
		for i := range feats {
			feats[i] = byte(rng.Intn(2))
		}
		reqs = append(reqs, DecodeRequest{Radio: r, RX: feats, Window: 8, Single: true})
	}
	// A malformed slot: out-of-alphabet rx element must error alone.
	reqs = append(reqs, DecodeRequest{Radio: WiFi, Ref: []byte{0, 1}, RX: []byte{7, 1}, Window: 2})

	want := make([]DecodeResult, len(reqs))
	for i, r := range reqs {
		if r.Single {
			ws, err := DecodeDifferentialStream(r.Radio, r.RX, r.Window)
			want[i] = DecodeResult{Windows: ws, Err: err}
			continue
		}
		ws, dropped, err := DecodeStream(r.Radio, r.Ref, r.RX, r.Window)
		want[i] = DecodeResult{Windows: ws, Dropped: dropped, Err: err}
	}
	for _, workers := range []int{1, 3, 0} {
		got := DecodeBatch(reqs, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results for %d requests", workers, len(got), len(reqs))
		}
		for i := range want {
			if (got[i].Err == nil) != (want[i].Err == nil) {
				t.Fatalf("workers=%d slot %d: err %v, want %v", workers, i, got[i].Err, want[i].Err)
			}
			if got[i].Dropped != want[i].Dropped || !reflect.DeepEqual(got[i].Windows, want[i].Windows) {
				t.Fatalf("workers=%d slot %d: batch result diverged from serial call", workers, i)
			}
		}
	}
	if got := DecodeBatch(nil, 2); len(got) != 0 {
		t.Fatalf("empty batch: got %d results", len(got))
	}
}
