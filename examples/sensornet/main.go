// Sensornet: a fleet of battery-free temperature sensors backscatters
// readings over the ZigBee traffic of an existing smart-home network. Each
// reading is framed as sensor id + 12-bit temperature + CRC-4 and sent
// over one session; the receiver unpacks and range-checks every field.
// This is the inventory/telemetry workload the paper's introduction
// motivates: IoT devices joining an already-deployed network for
// microwatts.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

// reading is one sensor report: 4-bit id, 12-bit temperature in 0.1 °C
// steps offset by -40 °C, 4-bit checksum.
type reading struct {
	id    int
	tempC float64
}

func (r reading) bits() []byte {
	t := int((r.tempC + 40) * 10)
	out := make([]byte, 0, 20)
	for i := 3; i >= 0; i-- {
		out = append(out, byte(r.id>>i)&1)
	}
	for i := 11; i >= 0; i-- {
		out = append(out, byte(t>>i)&1)
	}
	// CRC-4 over the 16 payload bits (poly x^4+x+1).
	out = append(out, crc4(out)...)
	return out
}

func parseReading(bs []byte) (reading, error) {
	if len(bs) < 20 {
		return reading{}, fmt.Errorf("short frame: %d bits", len(bs))
	}
	if got, want := crc4(bs[:16]), bs[16:20]; !equal(got, want) {
		return reading{}, fmt.Errorf("checksum mismatch")
	}
	id, t := 0, 0
	for _, b := range bs[:4] {
		id = id<<1 | int(b)
	}
	for _, b := range bs[4:16] {
		t = t<<1 | int(b)
	}
	return reading{id: id, tempC: float64(t)/10 - 40}, nil
}

func crc4(bs []byte) []byte {
	reg := 0
	for _, b := range bs {
		reg ^= int(b&1) << 3
		if reg&0x8 != 0 {
			reg = (reg << 1) ^ 0x13 // x^4 + x + 1
		} else {
			reg <<= 1
		}
		reg &= 0xF
	}
	return []byte{byte(reg>>3) & 1, byte(reg>>2) & 1, byte(reg>>1) & 1, byte(reg) & 1}
}

func equal(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func main() {
	sensors := []reading{
		{id: 1, tempC: 21.4},
		{id: 2, tempC: 19.8},
		{id: 3, tempC: 23.1},
		{id: 4, tempC: -3.5}, // the freezer sensor
		{id: 5, tempC: 64.2}, // the water heater
	}

	fmt.Println("battery-free sensors reporting over backscattered ZigBee (8 m):")
	for i, s := range sensors {
		decoded, err := freerider.Send(freerider.ZigBee, 8, s.bits(), int64(i+1))
		if err != nil {
			log.Fatalf("sensor %d: %v", s.id, err)
		}
		got, err := parseReading(decoded)
		if err != nil {
			log.Fatalf("sensor %d: %v", s.id, err)
		}
		fmt.Printf("  sensor %d: %+5.1f °C", got.id, got.tempC)
		if got.id != s.id || math.Abs(got.tempC-s.tempC) > 0.05 {
			log.Fatalf("  MISMATCH (sent id=%d %.1f °C)", s.id, s.tempC)
		}
		fmt.Println("  (verified)")
	}

	p := freerider.TagPower(freerider.ZigBee, 16e6)
	fmt.Printf("\neach tag draws %.1f µW (%.1f clock + %.1f switch + %.1f logic)\n",
		p.TotalUW(), p.ClockUW, p.SwitchUW, p.LogicUW)
}
