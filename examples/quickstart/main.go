// Quickstart: backscatter the string "hello, freerider" over productive
// 802.11g WiFi traffic and decode it at a commodity receiver five metres
// away. The excitation packets carry ordinary (random) payloads the whole
// time — the tag's message rides on top of them by codeword translation.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	message := "hello, freerider"
	tagBits := freerider.BitsFromBytes([]byte(message))

	fmt.Printf("tag message: %q (%d bits)\n", message, len(tagBits))
	decoded, err := freerider.Send(freerider.WiFi, 5, tagBits, 1)
	if err != nil {
		log.Fatalf("backscatter failed: %v", err)
	}

	out, err := freerider.BytesFromBits(decoded[:len(tagBits)])
	if err != nil {
		log.Fatalf("reassembling message: %v", err)
	}
	fmt.Printf("decoded:     %q\n", string(out))

	if string(out) != message {
		log.Fatal("message corrupted in flight")
	}
	fmt.Println("message delivered bit-exactly over backscattered WiFi")
}
