// Coexistence: reproduces the §4.4 question a deployment engineer asks
// before installing FreeRider in an office — does backscatter hurt my
// WiFi, and does my WiFi hurt backscatter? The example runs both
// directions of the study for all three excitation radios and prints the
// throughput quantiles.
package main

import (
	"fmt"
	"log"

	"repro/internal/coexist"
	"repro/internal/stats"
	"repro/internal/tag"
)

func main() {
	excitations := []tag.Excitation{
		tag.ExcitationWiFi, tag.ExcitationZigBee, tag.ExcitationBluetooth,
	}

	fmt.Println("does backscatter hurt the WiFi network? (Fig 15)")
	for _, exc := range excitations {
		cfg := coexist.DefaultConfig(exc)
		without, err := coexist.WiFiThroughput(cfg, false)
		if err != nil {
			log.Fatal(err)
		}
		with, err := coexist.WiFiThroughput(cfg, true)
		if err != nil {
			log.Fatal(err)
		}
		mw, _ := stats.Median(without)
		mt, _ := stats.Median(with)
		fmt.Printf("  tag riding %-15v wifi median: %.1f -> %.1f Mbps (Δ %+.2f)\n",
			exc, mw, mt, mt-mw)
	}

	fmt.Println("\ndoes WiFi traffic hurt backscatter? (Fig 16)")
	for _, exc := range excitations {
		cfg := coexist.DefaultConfig(exc)
		absent, err := coexist.BackscatterThroughput(cfg, false)
		if err != nil {
			log.Fatal(err)
		}
		present, err := coexist.BackscatterThroughput(cfg, true)
		if err != nil {
			log.Fatal(err)
		}
		ma, _ := stats.Median(absent)
		mp, _ := stats.Median(present)
		qa, _ := stats.Quantile(absent, 0.1)
		qp, _ := stats.Quantile(present, 0.1)
		fmt.Printf("  %-15v median %.1f -> %.1f kbps, 10th percentile %.1f -> %.1f kbps\n",
			exc, ma, mp, qa, qp)
	}

	fmt.Println("\nconclusion: the tag is invisible to WiFi; WiFi only dents the")
	fmt.Println("tail of WiFi-excited backscatter (the wideband receiver admits")
	fmt.Println("more adjacent-channel leakage than ZigBee/Bluetooth's filters).")
}
