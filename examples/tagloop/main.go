// Tagloop walks through one complete FreeRider control-and-data cycle the
// way the tag's electronics experience it (§2.4.1): the coordinator's PLM
// announcement arrives as raw RF bursts, the envelope detector times them,
// the firmware state machine finds the preamble in its bit buffer and arms
// a random slot, and when that slot comes up the tag backscatters its
// queued reading over a real WiFi excitation packet.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/firmware"
	"repro/internal/plm"
	"repro/internal/signal"
	"repro/internal/tag"
)

func main() {
	scheme := plm.DefaultScheme()
	const slots = 6
	reading := freerider.BitsFromBytes([]byte{0x42, 0x17}) // a sensor value

	// --- The coordinator announces a 6-slot round over PLM. ---
	payload, err := firmware.EncodeAnnouncement(slots)
	if err != nil {
		log.Fatal(err)
	}
	durations := scheme.EncodeMessage(payload)
	fmt.Printf("coordinator: announcing a %d-slot round (%d PLM pulses, %.1f ms)\n",
		slots, len(durations), airtime(durations, scheme)*1e3)

	// Render the announcement as RF bursts at the tag antenna.
	const rate = 2e6
	rf := signal.New(rate, int(airtime(durations, scheme)*rate)+4000)
	amp := signal.AmplitudeForPowerDBm(-35)
	pos := 1000
	for _, d := range durations {
		for i := 0; i < int(d*rate); i++ {
			rf.Samples[pos+i] = complex(amp, 0)
		}
		pos += int((d + scheme.Gap) * rate)
	}

	// --- The tag hears it through its envelope detector. ---
	det := tag.NewEnvelopeDetector()
	pulses := det.Detect(rf)
	fmt.Printf("tag: envelope detector timed %d pulses\n", len(pulses))

	fw, err := firmware.New(scheme, 99)
	if err != nil {
		log.Fatal(err)
	}
	fw.Enqueue(reading)
	for _, p := range pulses {
		fw.OnPulse(p)
	}
	if fw.State() != firmware.Armed {
		log.Fatal("tag failed to arm from the announcement")
	}
	fmt.Printf("tag: armed for slot %d of %d\n", fw.ChosenSlot(), slots)

	// --- The round's slots: the armed one backscatters for real. ---
	cfg := freerider.DefaultConfig(freerider.WiFi, 5)
	cfg.Link.FadingK = 0
	session, err := freerider.NewSession(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for idx := 0; idx < slots; idx++ {
		data, fire := fw.OnSlot(idx)
		if !fire {
			fmt.Printf("slot %d: idle\n", idx)
			continue
		}
		pr, err := session.RunPacket(data)
		if err != nil {
			log.Fatal(err)
		}
		if !pr.Decoded {
			log.Fatal("backscatter packet lost")
		}
		decoded, err := freerider.BytesFromBits(pr.DecodedTag[:len(data)])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("slot %d: tag backscattered %d bits over a %d-byte WiFi packet -> reading %#02x %#02x\n",
			idx, len(data), cfg.PayloadSize, decoded[0], decoded[1])
	}
	fmt.Printf("tag: back to %v, queue drained (%d pending)\n", fw.State() == firmware.Idle, fw.QueueLen())
}

func airtime(durations []float64, s plm.Scheme) float64 {
	var t float64
	for _, d := range durations {
		t += d + s.Gap
	}
	return t
}
