// Multitag: twenty tags share one excitation transmitter through the
// Framed Slotted Aloha MAC of §2.4. The transmitter coordinates rounds
// over the PLM downlink, adapts its frame size to the collision rate, and
// the run reports aggregate throughput, per-tag delivery and Jain's
// fairness index — the Fig 17 scenario as a library user would run it.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const tags = 20
	const rounds = 12

	fmt.Printf("%d tags, %d coordination rounds, adaptive framed slotted aloha\n\n", tags, rounds)

	cfg := freerider.DefaultNetworkConfig(freerider.FramedSlottedAloha, tags)
	res, err := freerider.RunNetwork(cfg, rounds)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("round  slots  success  collision  idle")
	for i, r := range res.Rounds {
		fmt.Printf("%5d  %5d  %7d  %9d  %4d\n", i+1, r.Slots, r.Successes, r.Collisions, r.Idle)
	}

	fmt.Println("\nper-tag delivery (bits):")
	for i, b := range res.PerTagBits {
		fmt.Printf("  tag %2d: %5d\n", i+1, b)
	}

	j, err := res.FairnessIndex()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naggregate throughput: %.1f kbps\n", res.AggregateThroughputBps()/1e3)
	fmt.Printf("Jain fairness index:  %.3f (paper: ~0.85 at 20 tags)\n", j)

	// Contrast with the collision-free TDM baseline.
	tdm, err := freerider.RunNetwork(freerider.DefaultNetworkConfig(freerider.TDM, tags), rounds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TDM baseline:         %.1f kbps (no collisions, but needs association)\n",
		tdm.AggregateThroughputBps()/1e3)
}
